package bayes

import (
	"fmt"
	"math"
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// Property/invariant tests: whatever sequence of beacon updates the grid
// absorbs — including the outliers the fault layer injects — the belief
// must remain a probability distribution: normalized to 1 within 1e-9,
// every cell non-negative and finite.

// gaussDensity mimics a calibrated Gaussian distance PDF, including the
// moments interface that unlocks the annulus fast path.
type gaussDensity struct{ mean, std float64 }

func (g gaussDensity) Density(d float64) float64 {
	z := (d - g.mean) / g.std
	return math.Exp(-0.5*z*z) / (g.std * math.Sqrt(2*math.Pi))
}
func (g gaussDensity) Mean() float64    { return g.mean }
func (g gaussDensity) Std() float64     { return g.std }
func (g gaussDensity) IsGaussian() bool { return true }

// flatDensity is a non-parametric constant PDF (the multipath regime's
// tabulated shape, flattened to its extreme).
type flatDensity struct{ v float64 }

func (f flatDensity) Density(float64) float64 { return f.v }

// spikeDensity is an adversarial PDF: enormous mass in a thin shell, zero
// elsewhere — the shape an RSSI outlier produces after table lookup.
type spikeDensity struct{ at float64 }

func (s spikeDensity) Density(d float64) float64 {
	if math.Abs(d-s.at) < 0.5 {
		return 1e12
	}
	return 0
}

// nanDensity poisons every evaluation — the worst imaginable table entry.
// The constraint floor shields the grid: a NaN density never beats the
// floor, so the belief is renormalized unchanged.
type nanDensity struct{}

func (nanDensity) Density(float64) float64 { return math.NaN() }

// infDensity overflows the constraint product, forcing the collapse
// fallback (sum becomes Inf) and the uniform reset.
type infDensity struct{}

func (infDensity) Density(float64) float64 { return math.Inf(1) }

// checkInvariants asserts the belief is a well-formed distribution.
func checkInvariants(t *testing.T, g *Grid, step string) {
	t.Helper()
	if total := g.TotalProbability(); math.Abs(total-1) > 1e-9 {
		t.Fatalf("%s: total probability %v drifted from 1", step, total)
	}
	for i, pi := range g.p {
		if math.IsNaN(pi) || math.IsInf(pi, 0) {
			t.Fatalf("%s: cell %d is %v", step, i, pi)
		}
		if pi < 0 {
			t.Fatalf("%s: cell %d negative: %v", step, i, pi)
		}
	}
	if est := g.Estimate(); !g.area.Contains(est) {
		t.Fatalf("%s: estimate %v escaped the area", step, est)
	}
}

// randomDensity draws one of the density shapes, outliers included.
func randomDensity(rng *sim.RNG, diag float64) DistanceDensity {
	switch rng.Intn(10) {
	case 0:
		return spikeDensity{at: rng.Uniform(0, 1.5*diag)}
	case 1:
		return flatDensity{v: rng.Uniform(0, 1e-9)} // near-zero everywhere
	case 2:
		return nanDensity{}
	case 3:
		return infDensity{}
	case 4:
		return gaussDensity{mean: rng.Uniform(0, diag), std: 1e-9} // degenerate shell
	default:
		return gaussDensity{
			mean: rng.Uniform(1, diag),
			std:  rng.Uniform(0.5, 15),
		}
	}
}

// TestBeliefInvariantsUnderRandomSequences drives the grid through long
// randomized update sequences at several fixed seeds and asserts the
// distribution invariants after every single operation.
func TestBeliefInvariantsUnderRandomSequences(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 424242} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed).Stream("bayes-property")
			area := geom.Square(120)
			g, err := NewGrid(area, 4)
			if err != nil {
				t.Fatal(err)
			}
			diag := area.Diagonal()
			for step := 0; step < 300; step++ {
				label := fmt.Sprintf("step %d", step)
				switch {
				case rng.Bool(0.08):
					g.Reset()
					if g.BeaconCount() != 0 {
						t.Fatalf("%s: reset kept beacon count", label)
					}
				default:
					// Beacon positions may lie outside the area (a robot
					// just beyond the boundary still beacons in).
					pos := geom.Vec2{
						X: rng.Uniform(-30, 150),
						Y: rng.Uniform(-30, 150),
					}
					g.ApplyBeacon(pos, randomDensity(rng, diag))
					if g.BeaconCount() < 1 {
						t.Fatalf("%s: beacon not counted", label)
					}
				}
				checkInvariants(t, g, label)
			}
		})
	}
}

// The constraint floor shields the belief from degenerate densities: a
// NaN or all-zero PDF loses to the floor in every cell, so the update is
// a uniform multiply followed by renormalization — the belief must come
// out unchanged (and still normalized).
func TestDegenerateDensityLeavesBeliefUnchanged(t *testing.T) {
	g, err := NewGrid(geom.Square(80), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shape the belief first so "unchanged" is a nontrivial claim.
	g.ApplyBeacon(geom.Vec2{X: 40, Y: 40}, gaussDensity{mean: 10, std: 3})
	before := make([]float64, len(g.p))
	copy(before, g.p)
	for _, pdf := range []DistanceDensity{nanDensity{}, flatDensity{v: 0}} {
		g.ApplyBeacon(geom.Vec2{X: 10, Y: 10}, pdf)
		checkInvariants(t, g, fmt.Sprintf("after %T", pdf))
		for i, pi := range g.p {
			if math.Abs(pi-before[i]) > 1e-12 {
				t.Fatalf("%T: cell %d moved %v -> %v", pdf, i, before[i], pi)
			}
		}
	}
}

// An overflowing density drives the constraint sum to Inf; the grid must
// catch the collapse and fall back to the uniform prior, not emit NaNs.
func TestCollapseFallsBackToUniform(t *testing.T) {
	g, err := NewGrid(geom.Square(80), 4)
	if err != nil {
		t.Fatal(err)
	}
	g.ApplyBeacon(geom.Vec2{X: 40, Y: 40}, gaussDensity{mean: 10, std: 3})
	g.ApplyBeacon(geom.Vec2{X: 10, Y: 10}, infDensity{})
	checkInvariants(t, g, "after collapse")
	u := 1 / float64(len(g.p))
	for i, pi := range g.p {
		if pi != u {
			t.Fatalf("cell %d = %v, want uniform %v", i, pi, u)
		}
	}
	if g.BeaconCount() != 1 {
		t.Fatalf("beacon count = %d after collapse reset, want 1", g.BeaconCount())
	}
}

// Outlier spikes between honest beacons must not break normalization or
// the >=3 beacon readiness rule.
func TestOutliersInterleavedWithHonestBeacons(t *testing.T) {
	g, err := NewGrid(geom.Square(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Vec2{X: 30, Y: 70}
	anchors := []geom.Vec2{{X: 10, Y: 10}, {X: 90, Y: 20}, {X: 50, Y: 95}}
	for i, a := range anchors {
		g.ApplyBeacon(a, gaussDensity{mean: a.Dist(truth), std: 4})
		checkInvariants(t, g, fmt.Sprintf("honest %d", i))
		// An outlier after every honest beacon: the RSSI spike maps to a
		// wildly wrong distance.
		g.ApplyBeacon(a, gaussDensity{mean: a.Dist(truth) + 60, std: 2})
		checkInvariants(t, g, fmt.Sprintf("outlier %d", i))
	}
	if !g.Ready() {
		t.Fatalf("beacon count %d below readiness despite 6 updates", g.BeaconCount())
	}
}
