package cocoa_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cocoa"
)

// Example runs a small CoCoA deployment end to end and checks the two
// headline properties: bounded localization error and energy savings from
// coordinated sleeping.
func Example() {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 10
	cfg.NumEquipped = 5
	cfg.BeaconPeriodS = 30
	cfg.DurationS = 120
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000
	cfg.Seed = 42

	res, err := cocoa.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fixes happened:", res.Fixes > 0)
	fmt.Println("steady error below 30 m:", res.Series().ValueAt(110) < 30)
	fmt.Println("coordination saves energy:", res.EnergySavings() > 1)
	// Output:
	// fixes happened: true
	// steady error below 30 m: true
	// coordination saves energy: true
}

// ExampleRunContext runs a deployment under a deadline. The context only
// gates execution — a run that completes is byte-identical to Run — while
// an expired deadline stops the simulation cooperatively.
func ExampleRunContext() {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 10
	cfg.NumEquipped = 5
	cfg.DurationS = 120
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := cocoa.RunContext(ctx, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", len(res.Times) > 0)

	// An invalid configuration reports which field failed, wrapped under
	// ErrInvalidConfig for errors.Is/As dispatch.
	bad := cfg
	bad.NumRobots = 0
	_, err = cocoa.RunContext(ctx, bad)
	var ce *cocoa.ConfigError
	fmt.Println("invalid:", errors.Is(err, cocoa.ErrInvalidConfig), "field:", errors.As(err, &ce) && ce.Field == "NumRobots")
	// Output:
	// completed: true
	// invalid: true field: true
}

// ExampleExperiments dispatches an experiment through the registry — the
// uniform, context-aware path that replaces the per-figure free functions.
func ExampleExperiments() {
	for _, d := range cocoa.Experiments() {
		if d.Name != "fig9" {
			continue
		}
		v, err := d.Run(context.Background(), cocoa.ExperimentOptions{
			Seed: 1, DurationS: 120, NumRobots: 10,
			CalibrationSamples: 40000, GridCellM: 8,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rows := v.([]cocoa.Fig9Row)
		fmt.Println("periods swept:", len(rows))
	}
	// Output:
	// periods swept: 4
}

// ExampleRunFig9 regenerates the paper's Figure 9 at a reduced scale and
// reports its qualitative shape: energy savings grow with the beacon
// period.
func ExampleRunFig9() {
	rows, err := cocoa.RunFig9(cocoa.ExperimentOptions{
		Seed: 1, DurationS: 120, NumRobots: 10,
		CalibrationSamples: 40000, GridCellM: 8,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	grows := true
	for i := 1; i < len(rows); i++ {
		if rows[i].SavingsRatio <= rows[i-1].SavingsRatio {
			grows = false
		}
	}
	fmt.Println("periods swept:", len(rows))
	fmt.Println("savings grow with T:", grows)
	// Output:
	// periods swept: 4
	// savings grow with T: true
}

// ExampleNewGeoGraph routes a packet with greedy-face-greedy over a tiny
// three-node line.
func ExampleNewGeoGraph() {
	pts := []cocoa.Vec2{{X: 0}, {X: 30}, {X: 60}}
	g, err := cocoa.NewGeoGraph(pts, pts, 40)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := g.GFG(0, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("delivered:", out.Delivered, "hops:", out.Hops)
	// Output:
	// delivered: true hops: 2
}
