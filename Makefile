GO ?= go

.PHONY: all build test vet race fuzz check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz gives each native fuzz target a short budget beyond its checked-in
# corpus. Go only allows one -fuzz per invocation, so targets run in
# sequence. Longer sessions: go test -fuzz=FuzzX -fuzztime=5m ./internal/...
FUZZTIME ?= 5s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzGilbertElliott -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzEventlogRoundTrip -fuzztime=$(FUZZTIME) ./internal/eventlog

# check is the gate a change must pass before it lands: static analysis,
# the full suite under the race detector (the experiment engine fans runs
# out across goroutines, so -race is not optional here), and a short fuzz
# pass over the serialization and loss-channel targets.
check: vet race fuzz

# bench regenerates every paper figure at reduced scale, including the
# serial-vs-parallel engine pair (BenchmarkReplication*).
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
