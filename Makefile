GO ?= go

.PHONY: all build test vet race fuzz check bench bench-smoke bench-json clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz gives each native fuzz target a short budget beyond its checked-in
# corpus. Go only allows one -fuzz per invocation, so targets run in
# sequence. Longer sessions: go test -fuzz=FuzzX -fuzztime=5m ./internal/...
FUZZTIME ?= 5s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzGilbertElliott -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzEventlogRoundTrip -fuzztime=$(FUZZTIME) ./internal/eventlog
	$(GO) test -run='^$$' -fuzz=FuzzTabulateAgreement -fuzztime=$(FUZZTIME) ./internal/caltable

# check is the gate a change must pass before it lands: static analysis,
# the full suite under the race detector (the experiment engine fans runs
# out across goroutines, so -race is not optional here), a short fuzz pass
# over the serialization/loss-channel/LUT targets, and a one-iteration
# benchmark smoke so bench-only code paths cannot rot between bench runs.
check: vet race fuzz bench-smoke

# bench regenerates every paper figure at reduced scale, including the
# serial-vs-parallel engine pair (BenchmarkReplication*).
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark for exactly one iteration —
# a correctness gate, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json refreshes the checked-in benchmark trajectory (BENCH_PR3.json)
# from a full -benchmem run; see README "Benchmark tracking" for the format.
BENCHJSON_OUT ?= BENCH_PR3.json

bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCHJSON_OUT)

clean:
	$(GO) clean ./...
