GO ?= go

.PHONY: all build test vet race check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the gate a change must pass before it lands: static analysis
# plus the full suite under the race detector (the experiment engine fans
# runs out across goroutines, so -race is not optional here).
check: vet race

# bench regenerates every paper figure at reduced scale, including the
# serial-vs-parallel engine pair (BenchmarkReplication*).
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
