GO ?= go

.PHONY: all build test vet race fuzz shuffle check bench bench-smoke \
	bench-json cover cover-check bench-compare serve-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz gives each native fuzz target a short budget beyond its checked-in
# corpus. Go only allows one -fuzz per invocation, so targets run in
# sequence. Longer sessions: go test -fuzz=FuzzX -fuzztime=5m ./internal/...
FUZZTIME ?= 5s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzGilbertElliott -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzEventlogRoundTrip -fuzztime=$(FUZZTIME) ./internal/eventlog
	$(GO) test -run='^$$' -fuzz=FuzzTabulateAgreement -fuzztime=$(FUZZTIME) ./internal/caltable
	$(GO) test -run='^$$' -fuzz=FuzzGridIndex -fuzztime=$(FUZZTIME) ./internal/mac
	$(GO) test -run='^$$' -fuzz=FuzzGridStats -fuzztime=$(FUZZTIME) ./internal/bayes
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointRoundTrip -fuzztime=$(FUZZTIME) ./internal/checkpoint

# shuffle reruns the stateful service/runner suites twice in random order:
# the runner and serve packages keep cross-test state (scratch pools, a
# process-global telemetry registry, daemon state dirs), so any hidden
# test-order dependence shows up here instead of flaking in CI.
shuffle:
	$(GO) test -count=2 -shuffle=on ./internal/runner ./internal/serve

# cover prints per-package statement coverage; cover-check additionally
# enforces the floors in coverage_floor.txt (see cmd/covergate). Floors
# ratchet upward as tests improve.
cover:
	$(GO) test -cover ./...

cover-check:
	$(GO) test -cover ./... | $(GO) run ./cmd/covergate -floors coverage_floor.txt

# serve-smoke boots the cocoad service on a loopback port, submits the
# odometry golden family through the real HTTP API, and requires the
# served result's summary to be byte-identical to the checked-in golden
# file — the end-to-end proof that the service layer adds scheduling,
# never semantics.
serve-smoke:
	$(GO) run ./cmd/cocoad -smoke internal/scenario/testdata/golden_odometry.json

# check is the gate a change must pass before it lands: static analysis,
# the full suite under the race detector (the experiment engine fans runs
# out across goroutines, so -race is not optional here), a short fuzz pass
# over the serialization/loss-channel/LUT targets, a one-iteration
# benchmark smoke so bench-only code paths cannot rot between bench runs,
# the per-package coverage floor gate, the cocoad end-to-end smoke, the
# headline-benchmark regression gate, and the shuffled reruns of the
# order-sensitive service suites.
check: vet race fuzz shuffle bench-smoke cover-check serve-smoke bench-compare

# bench regenerates every paper figure at reduced scale, including the
# serial-vs-parallel engine pair (BenchmarkReplication*).
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark for exactly one iteration —
# a correctness gate, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json refreshes the checked-in benchmark trajectory
# from a full -benchmem run; see README "Benchmark tracking" for the format.
BENCHJSON_OUT ?= BENCH_PR10.json

bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCHJSON_OUT)

# bench-compare re-times just the headline benchmarks (the root package's
# end-to-end paths plus the telemetry layer's disabled-path record costs)
# and fails on a >25% regression against the checked-in baseline — in
# ns/op, and in B/op / allocs/op wherever the baseline carries -benchmem
# columns.
BENCH_BASELINE ?= BENCH_PR9.json

bench-compare:
	{ $(GO) test -run='^$$' -bench='^(BenchmarkReplicationSerial|BenchmarkFig4OdometryOnly|BenchmarkSwarmSim1000)$$' -benchmem . && \
	  $(GO) test -run='^$$' -bench='^(BenchmarkCounterIncDisabled|BenchmarkHistogramObserveDisabled|BenchmarkSpanSimDisabled)$$' -benchmem ./internal/telemetry ; } \
		| $(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE)

clean:
	$(GO) clean ./...
