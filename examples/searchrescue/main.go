// The searchrescue example plays the paper's motivating scenario: a robot
// team sweeps a disaster area; when an unequipped robot detects a
// survivor, it reports the survivor at its own estimated position. The
// example measures how far the reported positions are from the truth and
// whether they are inside the paper's 8-10 m usefulness bound ("survivors
// can be located within 8 m; pinpointing the exact location is then
// trivial once more resources are deployed").
package main

import (
	"fmt"
	"os"

	"cocoa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "searchrescue:", err)
		os.Exit(1)
	}
}

func run() error {
	// The paper's cost-reduced configuration: only one third of the
	// robots carry localization devices.
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 30
	cfg.NumEquipped = 10
	cfg.BeaconPeriodS = 50
	cfg.DurationS = 900
	cfg.Seed = 11
	// Survivor reports must actually reach the operators: enable the
	// geographic-unicast data path toward the Sync robot.
	cfg.EnableReporting = true

	fmt.Printf("Search-and-rescue sweep: %d robots, %d with localization devices, %.0f minutes\n",
		cfg.NumRobots, cfg.NumEquipped, float64(cfg.DurationS)/60)
	res, err := cocoa.Run(cfg)
	if err != nil {
		return err
	}

	// Survivor detections: any unequipped robot's final report. The
	// reported survivor position inherits the robot's own localization
	// error, so the error CDF *is* the rescue-quality metric.
	cdf, err := res.ErrorCDFAt(float64(cfg.DurationS) - 1)
	if err != nil {
		return err
	}
	fmt.Println("\nIf a survivor were detected at the end of the sweep, the reported")
	fmt.Println("position would be off by:")
	for _, p := range []float64{0.5, 0.9, 0.95} {
		fmt.Printf("  %2.0f%% of robots: <= %.1f m\n", p*100, cdf.Quantile(p))
	}
	within8 := cdf.FractionBelow(8)
	within10 := cdf.FractionBelow(10)
	fmt.Printf("\nwithin the paper's 8 m usefulness bound: %.0f%% of robots\n", within8*100)
	fmt.Printf("within 10 m:                              %.0f%% of robots\n", within10*100)

	// Show a few concrete reports.
	fmt.Println("\nSample reports (robot believed vs. actual position):")
	shown := 0
	for id, eq := range res.Equipped {
		if eq || shown >= 5 {
			continue
		}
		est := res.FinalEstimates[id]
		truth := res.FinalTruePositions[id]
		fmt.Printf("  robot %2d reports survivor at %v; actually at %v (off by %.1f m)\n",
			id, est, truth, est.Dist(truth))
		shown++
	}

	if within10 < 0.5 {
		fmt.Println("\nwarning: fewer than half the robots meet the 10 m bound;")
		fmt.Println("consider a shorter beacon period or more equipped robots.")
	}

	// Getting the report out matters as much as its accuracy: status
	// reports are unicast hop by hop toward the Sync robot using the
	// robots' own CoCoA coordinates.
	fmt.Printf("\nreport channel to the controller: %d reports sent, %.0f%% delivered",
		res.ReportsSent, 100*res.ReportDeliveryRate())
	if res.ReportsDelivered > 0 {
		fmt.Printf(" (%.2f hops avg)", float64(res.ReportHopsTotal)/float64(res.ReportsDelivered))
	}
	fmt.Println()
	return nil
}
