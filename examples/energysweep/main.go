// The energysweep example walks the operator decision the paper's Section
// 4.3.1 teaches: choosing the beacon period T. It sweeps T, prints the
// accuracy-vs-energy frontier, and recommends the knee (the paper's answer:
// 50-100 s).
package main

import (
	"fmt"
	"os"

	"cocoa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energysweep:", err)
		os.Exit(1)
	}
}

func run() error {
	periods := []float64{10, 25, 50, 100, 200, 300}
	fmt.Println("Sweeping beacon period T (20 robots, 10 equipped, 10 simulated minutes)...")
	fmt.Printf("\n%6s %14s %14s %14s %10s\n",
		"T(s)", "mean err (m)", "energy (J)", "no-coord (J)", "savings")

	type row struct {
		T       float64
		err     float64
		energy  float64
		savings float64
	}
	var rows []row
	for _, T := range periods {
		cfg := cocoa.DefaultConfig()
		cfg.NumRobots = 20
		cfg.NumEquipped = 10
		cfg.BeaconPeriodS = T
		cfg.DurationS = 600
		cfg.Seed = 5
		res, err := cocoa.Run(cfg)
		if err != nil {
			return err
		}
		r := row{T: T, err: res.MeanError(), energy: res.TotalEnergyJ, savings: res.EnergySavings()}
		rows = append(rows, r)
		fmt.Printf("%6.0f %14.2f %14.0f %14.0f %9.1fx\n",
			r.T, r.err, r.energy, res.NoSleepEnergyJ, r.savings)
	}

	// The knee: the largest T whose accuracy is within 25% of the best.
	best := rows[0].err
	for _, r := range rows {
		if r.err < best {
			best = r.err
		}
	}
	var knee row
	for _, r := range rows {
		if r.err <= best*1.25 {
			knee = r
		}
	}
	fmt.Printf("\nrecommended beacon period: T = %.0f s "+
		"(accuracy within 25%% of best, %.1fx energy savings)\n", knee.T, knee.savings)
	fmt.Println("(the paper lands on T in [50, 100] s for the full 50-robot team)")
	return nil
}
