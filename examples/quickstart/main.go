// The quickstart example builds a small CoCoA team, runs five simulated
// minutes, and prints the localization-error summary plus a Figure 5-style
// real-vs-odometry path pair — a minimal end-to-end tour of the public
// API.
package main

import (
	"fmt"
	"os"

	"cocoa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 10-robot team, half with localization devices, T = 50 s.
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 10
	cfg.NumEquipped = 5
	cfg.BeaconPeriodS = 50
	cfg.DurationS = 300
	cfg.Seed = 42

	fmt.Println("Running CoCoA:", cfg.NumRobots, "robots,", cfg.NumEquipped,
		"equipped, T =", cfg.BeaconPeriodS, "s ...")
	res, err := cocoa.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Println("\nLocalization error of the unequipped robots over time:")
	for i := 0; i < len(res.Times); i += 30 {
		fmt.Printf("  t=%3.0fs  avg error %6.2f m\n", res.Times[i], res.AvgError[i])
	}
	fmt.Printf("\nmean over the whole run: %.2f m\n", res.MeanError())
	fmt.Printf("RF fixes: %d (%.0f%% of windows)\n", res.Fixes, 100*res.FixRate())
	fmt.Printf("energy: %.0f J with coordination, %.0f J without (%.1fx savings)\n",
		res.TotalEnergyJ, res.NoSleepEnergyJ, res.EnergySavings())

	// The motivation for RF fixes: odometry alone drifts without bound.
	// Reproduce the paper's Figure 5 with one robot.
	fig5, err := cocoa.RunFig5(cocoa.ExperimentOptions{Seed: 42, DurationS: 300})
	if err != nil {
		return err
	}
	fmt.Println("\nWhy odometry alone is not enough (one robot, 5 minutes):")
	n := len(fig5.True)
	for i := 0; i < n; i += n / 6 {
		fmt.Printf("  t=%3ds  true %v   odometry believes %v\n",
			i, fig5.True[i], fig5.Estimated[i])
	}
	fmt.Printf("  final drift: %.1f m and growing\n", fig5.FinalGapM)
	return nil
}
