// The georouting example exercises the paper's closing claim: "CoCoA
// coordinates are good enough to enable scalable geographic routing of
// messages among the robots" (citing Bose et al.'s greedy-face-greedy
// algorithm). It runs a CoCoA deployment, snapshots every robot's believed
// position, and routes packets with both pure greedy forwarding and GFG
// (greedy + face-routing recovery) — once with perfect positions, once
// with CoCoA's estimates — to quantify how much localization error costs
// the routing layer.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"cocoa"
)

// The data plane routes at a shorter range than the localization beacons:
// high-rate data uses less robust modulation, and a short range makes the
// 200 m arena genuinely multi-hop, which is where geographic routing --
// and its sensitivity to position error -- actually matters.
const radioRangeM = 50

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "georouting:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 40
	cfg.NumEquipped = 20
	cfg.BeaconPeriodS = 50
	cfg.DurationS = 600
	cfg.Seed = 3

	fmt.Println("Running CoCoA to obtain position estimates...")
	res, err := cocoa.Run(cfg)
	if err != nil {
		return err
	}

	perfect, err := cocoa.NewGeoGraph(res.FinalTruePositions, res.FinalTruePositions, radioRangeM)
	if err != nil {
		return err
	}
	believed, err := cocoa.NewGeoGraph(res.FinalTruePositions, res.FinalEstimates, radioRangeM)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(99))
	const trials = 400
	var stats [4]cocoa.GeoStats // greedy/perfect, greedy/cocoa, gfg/perfect, gfg/cocoa
	n := perfect.N()
	for trial := 0; trial < trials; trial++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		record := func(i int, o cocoa.GeoOutcome, err error) error {
			if err != nil {
				return err
			}
			stats[i].Record(o)
			return nil
		}
		if o, err := perfect.Greedy(src, dst); record(0, o, err) != nil {
			return err
		}
		if o, err := believed.Greedy(src, dst); record(1, o, err) != nil {
			return err
		}
		if o, err := perfect.GFG(src, dst); record(2, o, err) != nil {
			return err
		}
		if o, err := believed.GFG(src, dst); record(3, o, err) != nil {
			return err
		}
	}

	labels := []string{
		"greedy, perfect positions",
		"greedy, CoCoA estimates ",
		"GFG,    perfect positions",
		"GFG,    CoCoA estimates ",
	}
	fmt.Printf("\nrouting %d random (src, dst) pairs over the real connectivity graph:\n", trials)
	for i, s := range stats {
		fmt.Printf("  %-26s %5.1f%% delivered, %.2f hops avg, %d recovery hops\n",
			labels[i], 100*s.DeliveryRate(), s.MeanHops(), s.Recoveries)
	}
	fmt.Printf("\nCoCoA mean localization error in this run: %.1f m "+
		"(radio range %d m — small relative error keeps forwarding choices sane)\n",
		res.MeanError(), radioRangeM)
	return nil
}
