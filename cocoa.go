// Package cocoa is the public API of the CoCoA reproduction: Coordinated
// Cooperative Ad-Hoc localization for mobile multi-robot networks
// (Koutsonikolas, Das, Hu, Lu, Lee — ICDCS 2006).
//
// CoCoA equips only a subset of a robot team with localization devices;
// those robots broadcast RF beacons carrying their coordinates while the
// rest localize themselves with Bayesian inference over RSSI-calibrated
// distance PDFs, dead-reckoning with odometry between beacon rounds. A
// multicast-coordinated sleep schedule keeps the radios off between
// transmit windows, which is where the energy savings come from.
//
// Quick start:
//
//	cfg := cocoa.DefaultConfig()
//	cfg.DurationS = 600
//	res, err := cocoa.Run(cfg)
//	// res.AvgError is the localization-error time series;
//	// res.EnergySavings() is the coordination payoff.
//
// The Experiments type re-exposes the per-figure runners that regenerate
// every table and figure of the paper's evaluation; see EXPERIMENTS.md.
package cocoa

import (
	"context"
	"io"

	"cocoa/internal/caltable"
	"cocoa/internal/checkpoint"
	icocoa "cocoa/internal/cocoa"
	"cocoa/internal/energy"
	"cocoa/internal/faults"
	"cocoa/internal/geom"
	"cocoa/internal/georouting"
	"cocoa/internal/mobility"
	"cocoa/internal/obs"
	"cocoa/internal/odometry"
	"cocoa/internal/radio"
	"cocoa/internal/runner"
	"cocoa/internal/scenario"
)

// Core types: the deployment configuration, the assembled team, and the
// run result.
type (
	// Config describes one simulated deployment; see DefaultConfig.
	Config = icocoa.Config
	// Mode selects odometry-only, RF-only, or combined localization.
	Mode = icocoa.Mode
	// Team is an assembled deployment ready to Run.
	Team = icocoa.Team
	// Result carries error time series, energy ledger, and protocol
	// counters of one run.
	Result = icocoa.Result
	// BeaconPayload is the on-air beacon content.
	BeaconPayload = icocoa.BeaconPayload
	// SyncPayload is the SYNC message disseminated over MRMM.
	SyncPayload = icocoa.SyncPayload
)

// Substrate configuration types, exposed so callers can tune the models.
type (
	// Vec2 is a 2D point in meters.
	Vec2 = geom.Vec2
	// Rect is an axis-aligned deployment area.
	Rect = geom.Rect
	// RadioModel parameterizes the 802.11b channel.
	RadioModel = radio.Model
	// EnergyParams holds the per-state radio power draw.
	EnergyParams = energy.Params
	// OdometryConfig holds the dead-reckoning error model.
	OdometryConfig = odometry.Config
	// CalibrationOptions controls the offline PDF-table construction.
	CalibrationOptions = caltable.Options
	// MobilityConfig parameterizes the random-waypoint movement model.
	MobilityConfig = mobility.Config
)

// Localization modes (the paper's three evaluated approaches).
const (
	ModeOdometryOnly = icocoa.ModeOdometryOnly
	ModeRFOnly       = icocoa.ModeRFOnly
	ModeCombined     = icocoa.ModeCombined
)

// DefaultConfig returns the paper's Section 4 evaluation setup: 50 robots
// in a 200 m x 200 m area, half equipped, T = 100 s, t = 3 s, k = 3,
// 30-minute runs, coordinated sleeping.
func DefaultConfig() Config { return icocoa.DefaultConfig() }

// NewTeam assembles a deployment (including the offline calibration
// phase).
func NewTeam(cfg Config) (*Team, error) { return icocoa.NewTeam(cfg) }

// Run assembles and runs a deployment in one call. It is RunContext with
// context.Background(): use RunContext when the caller needs deadlines or
// cancellation.
func Run(cfg Config) (*Result, error) { return icocoa.Run(cfg) }

// RunContext assembles and runs a deployment under ctx. Cancellation is
// cooperative: the simulation observes ctx at every sampling tick, stops,
// and returns ctx's error with a nil Result. The context only gates
// execution — it never feeds the simulation's randomness or event order —
// so a run that completes is byte-identical to Run(cfg) whether ctx
// carried a live deadline or not. A nil ctx means context.Background().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return icocoa.RunContext(ctx, cfg)
}

// Scratch is a reusable run slot: teams built through the same scratch
// recycle the previous run's simulator, RNG streams, and belief grids
// instead of reallocating them, with byte-identical results. See
// NewTeamScratch and RunScratch.
type Scratch = icocoa.Scratch

// NewScratch returns an empty run slot for NewTeamScratch / RunScratch.
func NewScratch() *Scratch { return icocoa.NewScratch() }

// NewTeamScratch is NewTeam on a reusable run slot. Building a team on a
// scratch invalidates the previous team built on the same scratch; a nil
// scratch degenerates to NewTeam exactly.
func NewTeamScratch(cfg Config, sc *Scratch) (*Team, error) {
	return icocoa.NewTeamScratch(cfg, sc)
}

// RunScratch assembles and runs a deployment on a reusable run slot — the
// replication-loop sibling of RunContext. Results are byte-identical to
// RunContext(ctx, cfg); only the memory is recycled.
func RunScratch(ctx context.Context, cfg Config, sc *Scratch) (*Result, error) {
	return icocoa.RunScratch(ctx, cfg, sc)
}

// Checkpoint/resume: a run with Config.Checkpoint set persists a snapshot
// of its deterministic state every EveryTicks sampling ticks; ResumeFrom
// continues an interrupted run from such a snapshot with a Result
// byte-identical to an uninterrupted run's. See DESIGN.md §14 for the
// replay-and-verify model.
type (
	// CheckpointSpec configures mid-run snapshotting (Config.Checkpoint):
	// a cadence in sampling ticks and the directory that holds the
	// atomically-replaced latest.ckpt.
	CheckpointSpec = icocoa.CheckpointSpec
	// Snapshot is one captured interruption point: the run's config, the
	// capture tick, the partial result, and per-subsystem state digests.
	Snapshot = checkpoint.Snapshot
)

// ErrSnapshotCorrupt classifies snapshot decoding failures (truncated or
// corrupted bytes, wrong version): errors.Is(err, ErrSnapshotCorrupt).
var ErrSnapshotCorrupt = checkpoint.ErrCorrupt

// Observability: a run with Config.Progress set publishes its live tick
// position through a lock-free gauge, and one with Config.Trace set
// records a span timeline exportable as Chrome trace-event JSON (load it
// in Perfetto). Both record, never steer — results are byte-identical
// with either attached or not. See DESIGN.md §15.
type (
	// Progress is the lock-free live-position gauge (Config.Progress,
	// ExperimentOptions.Gauge): current sampling tick, sweep run index,
	// and a wall-clock ETA derived at read time.
	Progress = obs.Progress
	// Trace records hierarchical run spans on the simulation's virtual
	// clock (Config.Trace); WriteJSON emits Chrome trace-event JSON.
	Trace = obs.Trace
	// TraceEvent is one record of an exported trace.
	TraceEvent = obs.TraceEvent
)

// NewTrace returns an empty span recorder for Config.Trace.
func NewTrace() *Trace { return obs.NewTrace() }

// ReadTrace strictly decodes Chrome trace-event JSON written by
// Trace.WriteJSON, verifying phases and begin/end span balance.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadTrace(r) }

// Checkpoint file-sink constants: a checkpointing run atomically replaces
// CheckpointFile in its Checkpoint.Dir; EveryTicks <= 0 means
// DefaultCheckpointEveryTicks.
const (
	CheckpointFile              = icocoa.CheckpointFile
	DefaultCheckpointEveryTicks = icocoa.DefaultCheckpointEveryTicks
)

// ReadSnapshot loads a snapshot file written by a checkpointing run.
// Corrupt input fails with an error wrapping ErrSnapshotCorrupt — never a
// panic.
func ReadSnapshot(path string) (*Snapshot, error) { return checkpoint.ReadFile(path) }

// ResumeFrom continues the run captured in snap to completion: the
// embedded config is replayed deterministically from tick zero, the
// replayed state is verified against the snapshot's digests at its capture
// tick (a mismatch fails with *checkpoint.DivergenceError naming the
// diverged subsystems), and the full-run Result — byte-identical to an
// uninterrupted run of the same config — is returned.
func ResumeFrom(ctx context.Context, snap *Snapshot) (*Result, error) {
	return icocoa.ResumeFrom(ctx, snap)
}

// ConfigFromSnapshot decodes and validates the run configuration embedded
// in snap — for callers that want to inspect or operationally adjust the
// run (e.g. re-arm Checkpoint) before resuming it with ResumeTeam.
func ConfigFromSnapshot(snap *Snapshot) (Config, error) {
	return icocoa.ConfigFromSnapshot(snap)
}

// ResumeTeam builds the team that continues snap under cfg (normally
// ConfigFromSnapshot's output, optionally with operational fields like
// Checkpoint overridden). Running it replays, verifies, and completes the
// run; semantic config tampering is caught by digest verification.
func ResumeTeam(cfg Config, snap *Snapshot) (*Team, error) {
	return icocoa.ResumeTeam(cfg, snap)
}

// Config validation errors. Validate (and therefore NewTeam, Run,
// RunContext) reports configuration problems as a *ConfigError wrapping
// ErrInvalidConfig, so callers can branch with errors.Is and recover the
// offending field with errors.As — an HTTP service maps them to 400s.
var ErrInvalidConfig = icocoa.ErrInvalidConfig

// ConfigError identifies the Config field that failed validation and why.
type ConfigError = icocoa.ConfigError

// Submit starts cfg on its own goroutine and returns a handle to the
// eventual result: Done to select on, Result to wait, Cancel to abort the
// simulation cooperatively. Submit is the asynchronous sibling of
// RunContext for callers multiplexing many runs.
func Submit(ctx context.Context, cfg Config) *RunHandle {
	return runner.Go(ctx, func(jctx context.Context) (*Result, error) {
		return icocoa.RunContext(jctx, cfg)
	})
}

// RunHandle is one asynchronously executing simulation run.
type RunHandle = runner.Handle[*Result]

// Square returns a side x side deployment area anchored at the origin.
func Square(side float64) Rect { return geom.Square(side) }

// Experiment runner re-exports: everything cmd/cocoaexp uses to regenerate
// the paper's figures, available to library users as well.
type (
	// ExperimentOptions scales a figure run without changing its shape.
	ExperimentOptions = scenario.Options
	// Series is one labeled curve of a figure.
	Series = scenario.Series
	// Fig1Result holds the two calibration PDFs of Figure 1.
	Fig1Result = scenario.Fig1Result
	// Fig5Result holds the true-vs-odometry path pair of Figure 5.
	Fig5Result = scenario.Fig5Result
	// Fig7Result compares the three approaches at one speed.
	Fig7Result = scenario.Fig7Result
	// CDFSnapshot is one Figure 8 CDF.
	CDFSnapshot = scenario.CDFSnapshot
	// Fig9Row is one beacon-period outcome of Figure 9.
	Fig9Row = scenario.Fig9Row
	// Fig10Row is one equipped-count outcome of Figure 10.
	Fig10Row = scenario.Fig10Row
)

// ExperimentDescriptor is one registered experiment: a unique name, the
// CLI selector group it answers to, a section title, and the runner
// itself. Run returns the experiment's concrete result type (e.g.
// []Fig9Row for "fig9"); callers type-assert when rendering.
type ExperimentDescriptor = scenario.Descriptor

// Experiments returns every registered experiment in presentation order.
// cmd/cocoaexp drives its dispatch from this list; library users can
// iterate it to regenerate the full suite programmatically.
func Experiments() []ExperimentDescriptor { return scenario.Experiments() }

// MaxParallelism reports the engine's all-CPUs parallelism level
// (GOMAXPROCS). ExperimentOptions.Parallelism set to this value saturates
// the host; results are byte-identical at any parallelism.
func MaxParallelism() int { return runner.MaxParallelism() }

// ExperimentBeaconSweep is the paper's beacon-period sweep (Figures 6, 9).
func ExperimentBeaconSweep() []float64 {
	out := make([]float64, len(scenario.BeaconPeriods))
	for i, t := range scenario.BeaconPeriods {
		out[i] = float64(t)
	}
	return out
}

// ExperimentDeviceCounts is the paper's equipped-count sweep (Figure 10).
func ExperimentDeviceCounts() []int {
	return append([]int(nil), scenario.EquippedCounts...)
}

// RunFig1 regenerates Figure 1 (calibration PDFs).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig1(opts ExperimentOptions) (*Fig1Result, error) {
	return scenario.RunFig1(context.Background(), opts)
}

// RunFig4 regenerates Figure 4 (odometry-only error over time).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig4(opts ExperimentOptions) ([]Series, error) {
	return scenario.RunFig4(context.Background(), opts)
}

// RunFig5 regenerates Figure 5 (true vs odometry-estimated path).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig5(opts ExperimentOptions) (*Fig5Result, error) {
	return scenario.RunFig5(context.Background(), opts)
}

// RunFig6 regenerates Figure 6 (RF-only error across beacon periods).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig6(opts ExperimentOptions) ([]Series, error) {
	return scenario.RunFig6(context.Background(), opts)
}

// RunFig7 regenerates Figure 7 (CoCoA vs odometry-only vs RF-only).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig7(opts ExperimentOptions) ([]Fig7Result, error) {
	return scenario.RunFig7(context.Background(), opts)
}

// RunFig8 regenerates Figure 8 (error CDFs at three instants).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig8(opts ExperimentOptions) ([]CDFSnapshot, error) {
	return scenario.RunFig8(context.Background(), opts)
}

// RunFig9 regenerates Figure 9 (beacon-period impact on error and energy).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig9(opts ExperimentOptions) ([]Fig9Row, error) {
	return scenario.RunFig9(context.Background(), opts)
}

// RunFig10 regenerates Figure 10 (impact of the number of devices).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFig10(opts ExperimentOptions) ([]Fig10Row, error) {
	return scenario.RunFig10(context.Background(), opts)
}

// SteadyStateMean averages a curve past the warm-up prefix.
func SteadyStateMean(s Series, warmupS float64) float64 {
	return scenario.SteadyStateMean(s, warmupS)
}

// Extension and ablation rows (DESIGN.md Section 5).
type (
	// ExtensionRow compares CoCoA with and without secondary beaconing.
	ExtensionRow = scenario.ExtensionRow
	// AblationPruningRow compares MRMM pruning against plain ODMRP.
	AblationPruningRow = scenario.AblationPruningRow
	// AblationKRow measures the beacon-redundancy tradeoff.
	AblationKRow = scenario.AblationKRow
	// AblationGridRow measures the grid-resolution tradeoff.
	AblationGridRow = scenario.AblationGridRow
)

// RunExtensionSecondary evaluates the paper's future-work idea of letting
// localized unequipped robots beacon too.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunExtensionSecondary(opts ExperimentOptions) ([]ExtensionRow, error) {
	return scenario.RunExtensionSecondary(context.Background(), opts)
}

// RunAblationPruning compares MRMM mesh pruning against plain ODMRP.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunAblationPruning(opts ExperimentOptions) ([]AblationPruningRow, error) {
	return scenario.RunAblationPruning(context.Background(), opts)
}

// RunAblationK sweeps the per-window beacon redundancy k.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunAblationK(opts ExperimentOptions) ([]AblationKRow, error) {
	return scenario.RunAblationK(context.Background(), opts)
}

// RunAblationGrid sweeps the Bayesian grid resolution.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunAblationGrid(opts ExperimentOptions) ([]AblationGridRow, error) {
	return scenario.RunAblationGrid(context.Background(), opts)
}

// Extension studies beyond the paper's evaluation (each grounded in its
// design or future-work sections).
type (
	// AblationLocalizerRow compares the grid and particle backends.
	AblationLocalizerRow = scenario.AblationLocalizerRow
	// PowerControlRow is one transmit-power sweep outcome.
	PowerControlRow = scenario.PowerControlRow
	// ClockSkewRow quantifies SYNC's value under clock drift.
	ClockSkewRow = scenario.ClockSkewRow
)

// Localization backends for Config.Localizer.
const (
	LocalizerGrid     = icocoa.LocalizerGrid
	LocalizerParticle = icocoa.LocalizerParticle
	LocalizerEKF      = icocoa.LocalizerEKF
)

// LocalizerKind selects the RF estimation backend.
type LocalizerKind = icocoa.LocalizerKind

// RunAblationLocalizer compares the paper's grid estimator with Monte
// Carlo localization on the same deployment.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunAblationLocalizer(opts ExperimentOptions) ([]AblationLocalizerRow, error) {
	return scenario.RunAblationLocalizer(context.Background(), opts)
}

// RunExtensionPowerControl sweeps beacon transmit power (the paper's
// future-work question on cooperation distance).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunExtensionPowerControl(opts ExperimentOptions) ([]PowerControlRow, error) {
	return scenario.RunExtensionPowerControl(context.Background(), opts)
}

// RunExtensionClockSkew sweeps per-period clock drift with and without
// SYNC dissemination.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunExtensionClockSkew(opts ExperimentOptions) ([]ClockSkewRow, error) {
	return scenario.RunExtensionClockSkew(context.Background(), opts)
}

// Geographic routing over robot positions — the application the paper's
// conclusion motivates (Bose et al.'s greedy-face-greedy).
type (
	// GeoGraph is a connectivity + belief snapshot for routing.
	GeoGraph = georouting.Graph
	// GeoOutcome describes one routing attempt.
	GeoOutcome = georouting.Outcome
	// GeoStats aggregates routing outcomes.
	GeoStats = georouting.Stats
)

// NewGeoGraph builds a routing snapshot: truth defines radio connectivity,
// belief drives forwarding decisions.
func NewGeoGraph(truth, belief []Vec2, rangeM float64) (*GeoGraph, error) {
	return georouting.NewGraph(truth, belief, rangeM)
}

// BaselineRow compares localization systems at the same deployment scale.
type BaselineRow = scenario.BaselineRow

// RunBaselineCoopPos compares CoCoA with the Cooperative Positioning
// baseline (Kurazume et al., related work Section 5) and odometry-only.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunBaselineCoopPos(opts ExperimentOptions) ([]BaselineRow, error) {
	return scenario.RunBaselineCoopPos(context.Background(), opts)
}

// Observability: event hooks and types (serialized by internal/eventlog
// through the cocoasim -events flag).
type (
	// Event is one observable occurrence in a run.
	Event = icocoa.Event
	// EventKind enumerates observable occurrences.
	EventKind = icocoa.EventKind
	// Observer consumes run events inline with the simulation.
	Observer = icocoa.Observer
)

// Event kinds.
const (
	EventWindowStart = icocoa.EventWindowStart
	EventWindowEnd   = icocoa.EventWindowEnd
	EventBeaconSent  = icocoa.EventBeaconSent
	EventFix         = icocoa.EventFix
	EventFixMissed   = icocoa.EventFixMissed
	EventSleep       = icocoa.EventSleep
	EventWake        = icocoa.EventWake
	EventSyncRecv    = icocoa.EventSyncRecv
	EventFailure     = icocoa.EventFailure
	EventCrash       = icocoa.EventCrash
	EventRecover     = icocoa.EventRecover
)

// Robustness studies.
type (
	// FailureRow is one failure-injection outcome.
	FailureRow = scenario.FailureRow
	// Replication holds cross-seed statistics of the headline metric.
	Replication = scenario.Replication
	// FaultRow is one (loss rate, crash fraction) cell of the fault sweep.
	FaultRow = scenario.FaultRow
	// FaultsConfig parameterizes the fault-injection layer
	// (Config.Faults): bursty link loss, crash/recovery outages, RSSI
	// outlier spikes, and initial clock skew. The zero value injects
	// nothing.
	FaultsConfig = faults.Config
	// GEConfig is the Gilbert–Elliott two-state loss channel; build one
	// with BurstyLoss or set the transition/loss probabilities directly.
	GEConfig = faults.GEConfig
)

// BurstyLoss returns a Gilbert–Elliott configuration with the given
// steady-state loss rate and mean burst length in frames, for
// Config.Faults.GE.
func BurstyLoss(lossRate, meanBurstFrames float64) GEConfig {
	return faults.Bursty(lossRate, meanBurstFrames)
}

// RunFaultSweep crosses burst-loss rates with crash fractions and reports
// the graceful-degradation surface (mean error and uncovered-robot
// fraction vs fault intensity).
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFaultSweep(opts ExperimentOptions) ([]FaultRow, error) {
	return scenario.RunFaultSweep(context.Background(), opts)
}

// RunFailureInjection kills equipped robots mid-run and measures CoCoA's
// graceful degradation.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunFailureInjection(opts ExperimentOptions) ([]FailureRow, error) {
	return scenario.RunFailureInjection(context.Background(), opts)
}

// RunReplication repeats the default deployment across seeds and reports
// the cross-seed spread of the mean localization error.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunReplication(opts ExperimentOptions, seeds int) (Replication, error) {
	return scenario.RunReplication(context.Background(), opts, seeds)
}

// ScaleRow is one team size's outcome in the swarm-scale sweep.
type ScaleRow = scenario.ScaleRow

// ScaleSizes returns the swarm sweep's team sizes.
func ScaleSizes() []int {
	return append([]int(nil), scenario.ScaleSizes...)
}

// SwarmConfig builds a constant-density swarm deployment of n robots
// (DESIGN.md §12): the area grows with the team, transmit power drops so
// the neighborhood stays local, and the EKF backend keeps per-beacon cost
// independent of the area.
func SwarmConfig(n int) Config {
	return scenario.SwarmConfig(n)
}

// RunScale sweeps SwarmConfig over the swarm sizes.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunScale(opts ExperimentOptions) ([]ScaleRow, error) {
	return scenario.RunScale(context.Background(), opts)
}

// ReportingRow measures the controller-reporting data path.
type ReportingRow = scenario.ReportingRow

// RunExtensionReporting exercises greedy geographic unicast of status
// reports to the Sync robot over CoCoA coordinates.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunExtensionReporting(opts ExperimentOptions) ([]ReportingRow, error) {
	return scenario.RunExtensionReporting(context.Background(), opts)
}

// TerrainRow compares smooth and rough ground for one localization mode.
type TerrainRow = scenario.TerrainRow

// RunExtensionTerrain quantifies the introduction's uneven-surfaces
// concern: rough ground degrades odometry, CoCoA's RF fixes neutralize it.
//
// Deprecated: Use the Experiments registry — find the Descriptor by
// Name and call its Run(ctx, opts) — or the scenario runner behind it;
// this wrapper always runs with context.Background().
func RunExtensionTerrain(opts ExperimentOptions) ([]TerrainRow, error) {
	return scenario.RunExtensionTerrain(context.Background(), opts)
}
