// Command cocoad is the batch simulation service: a long-lived HTTP
// daemon that runs CoCoA deployments and registry experiments on a
// bounded job queue (internal/serve).
//
// API sketch (see README.md for curl examples):
//
//	POST /v1/jobs                submit {"config": {...}} or
//	                             {"experiment": "fig9", "options": {...}};
//	                             202 + job ID, 400 invalid, 429 queue full,
//	                             503 draining
//	GET  /v1/jobs/{id}           status + progress
//	GET  /v1/jobs/{id}/result    the finished result (409 until done)
//	GET  /v1/jobs/{id}/events    NDJSON stream of status changes
//	POST /v1/jobs/{id}/cancel    cooperative cancellation
//	GET  /v1/experiments         the experiment registry
//	GET  /healthz                queue occupancy and drain state
//
// SIGTERM/SIGINT starts a graceful drain: intake stops (503), accepted
// jobs finish, then the process exits. -drain-timeout bounds the wait;
// past it the remaining jobs are canceled cooperatively.
//
// Results are byte-identical to direct cocoa.Run calls at any worker
// count; `cocoad -smoke <golden.json>` proves it end to end against the
// checked-in golden summaries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cocoa/internal/obs"
	"cocoa/internal/serve"
	"cocoa/internal/telemetry"
)

var stderr io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cocoad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cocoad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:7117", "public API listen address")
		workers      = fs.Int("workers", 2, "concurrent simulation jobs")
		queueDepth   = fs.Int("queue", 8, "max jobs waiting for a worker before 429s")
		jobTimeout   = fs.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
		maxTimeout   = fs.Duration("max-job-timeout", 0, "cap on requested per-job deadlines (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs on shutdown")
		debugAddr    = fs.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this private address")
		smoke        = fs.String("smoke", "", "run the golden smoke check against this testdata file and exit")
		stateDir     = fs.String("state-dir", "", "persist job state beneath this directory and resume interrupted jobs on startup")
		ckptEvery    = fs.Int("checkpoint-every", 0, "snapshot cadence in sampling ticks for durable jobs (0 = default cadence)")
	)
	logOpts := obs.AddLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logOpts.NewLogger(stderr)
	if err != nil {
		return err
	}

	telemetry.Default.SetEnabled(true)
	if *debugAddr != "" {
		actual, err := serve.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		logger.Info("debug server listening", "addr", "http://"+actual+"/debug/vars")
	}

	srv := serve.New(serve.Config{
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		DefaultTimeout:       *jobTimeout,
		MaxTimeout:           *maxTimeout,
		StateDir:             *stateDir,
		CheckpointEveryTicks: *ckptEvery,
		Logger:               logger,
	})

	if *smoke != "" {
		return runSmoke(srv, *smoke)
	}

	// With a state directory, pick up whatever a previous process left
	// behind before opening the listener: recovered jobs re-enter the
	// queue first, so they resume even under immediate new load.
	recovered, err := srv.RecoverJobs()
	if err != nil {
		return fmt.Errorf("recover jobs: %w", err)
	}
	for _, id := range recovered {
		logger.Info("resuming job from state dir", "job", id, "state_dir", *stateDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Info("cocoad listening",
		"addr", "http://"+ln.Addr().String(), "workers", *workers, "queue", *queueDepth)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop intake first so new submissions see 503 while
	// accepted jobs finish, then close the HTTP listener.
	logger.Info("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	logger.Info("drained, exiting")
	return nil
}
