package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"cocoa"
	"cocoa/internal/serve"
)

// syncBuf lets the test read the daemon goroutine's stderr while it is
// still being written.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`msg="cocoad listening" addr=http://([^ ]+) `)

// startDaemon runs the daemon in-process on an ephemeral port and waits
// for its listen line. The returned channel yields run's error on exit.
func startDaemon(t *testing.T, buf *syncBuf, args ...string) (baseURL string, done chan error) {
	t.Helper()
	done = make(chan error, 1)
	go func() { done <- run(args) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			return "http://" + m[1], done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sigterm interrupts the in-process daemon the way an init system would.
func sigterm(t *testing.T, done chan error) error {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
		return nil
	}
}

// The daemon-level restart guarantee: SIGTERM mid-job, then a new daemon
// over the same state directory resumes the job and serves bytes
// identical to an uninterrupted direct run.
func TestRestartAfterSIGTERMResumesJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full restart round-trip; skipped in -short")
	}
	// The runtime starts a process-wide signal-dispatch goroutine on the
	// first Notify and never stops it; warm it up so the leak baseline
	// counts it on both sides.
	warmCtx, warmStop := signal.NotifyContext(context.Background(), syscall.SIGUSR1)
	warmStop()
	<-warmCtx.Done()
	before := runtime.NumGoroutine()
	oldStderr := stderr
	defer func() { stderr = oldStderr }()
	stateDir := t.TempDir()

	cfg := cocoa.DefaultConfig()
	cfg.Seed = 11
	cfg.NumRobots = 40
	cfg.NumEquipped = 20
	cfg.DurationS = 1800
	cfg.Calibration.Samples = 40000
	cfg.GridCellM = 2

	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon A: submit, wait for the first snapshot, SIGTERM. The tiny
	// drain timeout turns the graceful drain into the hard kill a slow
	// job would see from an impatient init system.
	bufA := &syncBuf{}
	stderr = bufA
	urlA, doneA := startDaemon(t, bufA, "-addr", "127.0.0.1:0",
		"-state-dir", stateDir, "-checkpoint-every", "40",
		"-workers", "1", "-drain-timeout", "1ms")
	body, err := json.Marshal(serve.JobRequest{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(urlA+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	ckpt := filepath.Join(stateDir, st.ID, "latest.ckpt")
	for deadline := time.Now().Add(60 * time.Second); ; {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot at %s", ckpt)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sigterm(t, doneA); err != nil {
		t.Fatalf("daemon A exit: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("state lost across SIGTERM: %v", err)
	}

	// Daemon B: same state directory; the job must come back by itself.
	bufB := &syncBuf{}
	stderr = bufB
	urlB, doneB := startDaemon(t, bufB, "-addr", "127.0.0.1:0",
		"-state-dir", stateDir, "-checkpoint-every", "40", "-workers", "1")
	if want := `msg="resuming job from state dir" job=` + st.ID; !bytes.Contains([]byte(bufB.String()), []byte(want)) {
		t.Fatalf("daemon B did not announce recovery; stderr:\n%s", bufB.String())
	}
	var fin serve.JobStatus
	for deadline := time.Now().Add(120 * time.Second); ; {
		r, err := http.Get(urlB + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&fin)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if fin.State.Terminal() {
			break
		}
		if s := fin.State; s != serve.StateQueued && s != serve.StateResumed {
			t.Fatalf("recovered job in state %s, want queued/resumed", s)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s", fin.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != serve.StateDone || !fin.Resumed {
		t.Fatalf("recovered job: state=%s resumed=%v (%s)", fin.State, fin.Resumed, fin.Error)
	}
	r, err := http.Get(urlB + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", r.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served resumed result differs from uninterrupted direct run")
	}
	if err := sigterm(t, doneB); err != nil {
		t.Fatalf("daemon B exit: %v", err)
	}

	http.DefaultClient.CloseIdleConnections()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
