package main

// The smoke check proves the service end to end: it boots the real HTTP
// stack on a loopback port, submits a golden-family config through the
// public API, fetches the result, and requires the summarized outcome to
// be byte-identical to the checked-in internal/scenario/testdata file —
// the same bar the golden regression test holds direct cocoa.Run calls
// to. JSON float64 round-trips are exact (shortest-representation
// encoding), so a byte-equal summary means the served result is the
// direct result.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cocoa"
	"cocoa/internal/obs"
	"cocoa/internal/scenario"
	"cocoa/internal/serve"
)

// smokeFamily extracts the golden family name from a testdata path like
// internal/scenario/testdata/golden_odometry.json.
func smokeFamily(path string) (string, error) {
	base := filepath.Base(path)
	rest, okPrefix := strings.CutPrefix(base, "golden_")
	name, okSuffix := strings.CutSuffix(rest, ".json")
	if !okPrefix || !okSuffix {
		return "", fmt.Errorf("smoke: %q is not a golden_<family>.json file", base)
	}
	return name, nil
}

func runSmoke(srv *serve.Server, goldenPath string) error {
	family, err := smokeFamily(goldenPath)
	if err != nil {
		return err
	}
	cfg, ok := scenario.QuickFamilies()[family]
	if !ok {
		return fmt.Errorf("smoke: unknown golden family %q", family)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stderr, "smoke: serving on %s, submitting family %q\n", base, family)

	body, err := json.Marshal(serve.JobRequest{Config: &cfg})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke: submit returned %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Minute)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: job %s still %s after 5m", st.ID, st.State)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("smoke: job %s ended %s: %s", st.ID, st.State, st.Error)
	}

	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: result returned %d", resp.StatusCode)
	}
	var res cocoa.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return err
	}

	got, err := json.MarshalIndent(scenario.Summarize(&res), "", "  ")
	if err != nil {
		return err
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		return fmt.Errorf("smoke: served result for family %q drifted from %s\ngot:\n%swant:\n%s",
			family, goldenPath, got, want)
	}
	fmt.Fprintf(stderr, "smoke: family %q byte-identical to %s\n", family, goldenPath)
	if err := smokeMetrics(base); err != nil {
		return err
	}
	return nil
}

// smokeMetrics scrapes the freshly exercised server's /metrics endpoint
// and runs the full in-repo exposition lint over it, so every `make
// check` proves the Prometheus surface stays parseable and well-formed
// with real job and simulation series present.
func smokeMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: /metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		return fmt.Errorf("smoke: /metrics content type %q, want %q", ct, obs.ContentType)
	}
	exp, err := obs.LintReader(resp.Body)
	if err != nil {
		return fmt.Errorf("smoke: /metrics failed exposition lint: %w", err)
	}
	for _, name := range []string{"cocoad_jobs", "cocoad_pool_workers", "go_goroutines"} {
		if _, ok := exp.Families[name]; !ok {
			return fmt.Errorf("smoke: /metrics missing expected family %q", name)
		}
	}
	fmt.Fprintf(stderr, "smoke: /metrics lint clean (%d families)\n", len(exp.Order))
	return nil
}
