package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"cocoa/internal/serve"
)

func TestSmokeFamily(t *testing.T) {
	cases := []struct {
		path, want string
		wantErr    bool
	}{
		{"internal/scenario/testdata/golden_odometry.json", "odometry", false},
		{"golden_rf-only.json", "rf-only", false},
		{"/abs/path/golden_faults.json", "faults", false},
		{"notgolden.json", "", true},
		{"golden_.json", "", false}, // empty family; rejected later by QuickFamilies lookup
	}
	for _, tc := range cases {
		got, err := smokeFamily(tc.path)
		if (err != nil) != tc.wantErr {
			t.Errorf("smokeFamily(%q) err = %v, wantErr %v", tc.path, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("smokeFamily(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestRunSmokeEndToEnd exercises the full daemon path the way `make
// serve-smoke` does: real HTTP server, real simulation, byte-compare
// against the checked-in golden summary.
func TestRunSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden simulation; skipped in -short")
	}
	golden := filepath.Join("..", "..", "internal", "scenario", "testdata", "golden_odometry.json")
	old := stderr
	stderr = io.Discard
	defer func() { stderr = old }()
	if err := run([]string{"-smoke", golden, "-workers", "2"}); err != nil {
		t.Fatalf("smoke: %v", err)
	}
}

func TestRunSmokeUnknownFamily(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	if err := runSmoke(srv, "golden_nosuch.json"); err == nil || !strings.Contains(err.Error(), "unknown golden family") {
		t.Fatalf("err = %v, want unknown family", err)
	}
	if err := runSmoke(srv, "bogus.json"); err == nil {
		t.Fatal("expected error for non-golden path")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	old := stderr
	stderr = &buf
	defer func() { stderr = old }()
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("expected flag parse error")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}); err == nil {
		t.Fatal("expected listen error for bad address")
	}
}
