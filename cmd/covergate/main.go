// Command covergate enforces per-package statement-coverage floors.
//
// It reads `go test -cover ./...` output on stdin (or -in file), parses
// the per-package coverage percentages, and compares them against the
// floors listed in a text file (-floors, default coverage_floor.txt):
//
//	# comment
//	cocoa/internal/mac 85.0
//
// Any floored package that is missing from the report, reports "[no test
// files]", or lands below its floor fails the gate with a non-zero exit.
// Packages without a floor line are reported but never gate — floors are
// raised deliberately, not inferred.
//
// Usage:
//
//	go test -cover ./... | go run ./cmd/covergate -floors coverage_floor.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("covergate", flag.ContinueOnError)
	floorsPath := fs.String("floors", "coverage_floor.txt", "per-package coverage floor file")
	inPath := fs.String("in", "", "read the go test -cover report from this file instead of stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}

	floors, err := readFloors(*floorsPath)
	if err != nil {
		return err
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	report, err := parseReport(in)
	if err != nil {
		return err
	}

	failures := check(floors, report)
	for _, pkg := range sortedKeys(report) {
		if _, gated := floors[pkg]; !gated && report[pkg] >= 0 {
			fmt.Fprintf(stdout, "covergate: %-40s %5.1f%% (no floor)\n", pkg, report[pkg])
		}
	}
	for _, pkg := range sortedKeys(floors) {
		cov, ok := report[pkg]
		switch {
		case !ok:
			fmt.Fprintf(stdout, "covergate: %-40s MISSING  (floor %.1f%%)\n", pkg, floors[pkg])
		case cov < 0:
			fmt.Fprintf(stdout, "covergate: %-40s NO TESTS (floor %.1f%%)\n", pkg, floors[pkg])
		default:
			fmt.Fprintf(stdout, "covergate: %-40s %5.1f%% (floor %.1f%%)\n", pkg, cov, floors[pkg])
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage below floor:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// readFloors parses the floor file: one "import/path percent" pair per
// line; blank lines and #-comments are skipped.
func readFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := map[string]float64{}
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package percent\", got %q", path, lineno, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("%s:%d: bad percentage %q", path, lineno, fields[1])
		}
		floors[fields[0]] = pct
	}
	return floors, sc.Err()
}

var (
	// ok  	cocoa/internal/mac	0.010s	coverage: 87.3% of statements
	coveredRe = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)
	// ok  	cocoa/internal/x	0.01s	[no statements] / coverage: [no statements]
	noStmtRe = regexp.MustCompile(`^ok\s+(\S+)\s+.*\[no statements\]`)
	// ?   	cocoa/internal/telemetry	[no test files]
	noTestRe = regexp.MustCompile(`^\?\s+(\S+)\s+\[no test files\]`)
)

// parseReport extracts per-package coverage from go test -cover output.
// A package with no test files maps to -1 so the gate can distinguish
// "missing from report" from "present but untested".
func parseReport(r io.Reader) (map[string]float64, error) {
	report := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := coveredRe.FindStringSubmatch(line); m != nil {
			pct, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bad coverage in %q", line)
			}
			report[m[1]] = pct
			continue
		}
		if m := noStmtRe.FindStringSubmatch(line); m != nil {
			report[m[1]] = 100 // nothing to cover
			continue
		}
		if m := noTestRe.FindStringSubmatch(line); m != nil {
			report[m[1]] = -1
		}
	}
	return report, sc.Err()
}

// check returns one failure line per floored package that is missing,
// untested, or under its floor.
func check(floors, report map[string]float64) []string {
	var failures []string
	for _, pkg := range sortedKeys(floors) {
		floor := floors[pkg]
		cov, ok := report[pkg]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: not in the coverage report (floor %.1f%%)", pkg, floor))
		case cov < 0:
			failures = append(failures, fmt.Sprintf("%s: has no test files (floor %.1f%%)", pkg, floor))
		case cov < floor:
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < floor %.1f%%", pkg, cov, floor))
		}
	}
	return failures
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
