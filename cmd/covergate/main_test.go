package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleReport = `ok  	cocoa/internal/mac	0.010s	coverage: 87.3% of statements
ok  	cocoa/internal/sim	0.026s	coverage: 96.2% of statements
?   	cocoa/internal/untested	[no test files]
ok  	cocoa/internal/empty	0.001s	coverage: [no statements]
--- some unrelated test noise
FAIL	cocoa/internal/broken	0.1s
`

func TestParseReport(t *testing.T) {
	report, err := parseReport(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"cocoa/internal/mac":      87.3,
		"cocoa/internal/sim":      96.2,
		"cocoa/internal/untested": -1,
		"cocoa/internal/empty":    100,
	}
	if len(report) != len(want) {
		t.Fatalf("parsed %d packages, want %d: %v", len(report), len(want), report)
	}
	for pkg, pct := range want {
		if report[pkg] != pct {
			t.Errorf("%s = %v, want %v", pkg, report[pkg], pct)
		}
	}
}

func TestCheck(t *testing.T) {
	report := map[string]float64{
		"a": 90.0,
		"b": 50.0,
		"c": -1,
	}
	cases := []struct {
		name     string
		floors   map[string]float64
		wantFail int
	}{
		{"all pass", map[string]float64{"a": 85}, 0},
		{"below floor", map[string]float64{"a": 85, "b": 60}, 1},
		{"no tests", map[string]float64{"c": 10}, 1},
		{"missing package", map[string]float64{"ghost": 10}, 1},
		{"exactly at floor", map[string]float64{"a": 90}, 0},
		{"everything wrong", map[string]float64{"b": 60, "c": 10, "ghost": 10}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := check(tc.floors, report); len(got) != tc.wantFail {
				t.Errorf("failures = %v, want %d", got, tc.wantFail)
			}
		})
	}
}

func TestReadFloors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "floors.txt")
	content := "# comment\n\ncocoa/internal/mac 85.0\ncocoa/internal/sim 90\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	floors, err := readFloors(path)
	if err != nil {
		t.Fatal(err)
	}
	if floors["cocoa/internal/mac"] != 85.0 || floors["cocoa/internal/sim"] != 90.0 {
		t.Errorf("floors = %v", floors)
	}

	for _, bad := range []string{"one-field-only\n", "pkg notanumber\n", "pkg 150\n"} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readFloors(path); err == nil {
			t.Errorf("malformed floors %q accepted", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	floors := filepath.Join(dir, "floors.txt")
	if err := os.WriteFile(floors, []byte("cocoa/internal/mac 85.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-floors", floors}, strings.NewReader(sampleReport), &out); err != nil {
		t.Fatalf("gate failed on passing report: %v", err)
	}
	if !strings.Contains(out.String(), "87.3%") {
		t.Errorf("output missing coverage line: %q", out.String())
	}

	if err := os.WriteFile(floors, []byte("cocoa/internal/mac 99.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-floors", floors}, strings.NewReader(sampleReport), &out)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Errorf("gate passed a report below floor: %v", err)
	}

	if err := run([]string{"-floors", filepath.Join(dir, "absent.txt")}, strings.NewReader(""), &out); err == nil {
		t.Error("missing floors file accepted")
	}
}
