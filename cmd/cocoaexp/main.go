// Command cocoaexp regenerates every figure of the paper's evaluation
// (Section 4) plus the extension and ablation studies from DESIGN.md, and
// prints the series/tables that EXPERIMENTS.md records.
//
// Dispatch is driven by the experiment registry (cocoa.Experiments()): each
// registered experiment pairs with a renderer below, so adding an
// experiment means one registry entry and one renderer. Independent
// simulation runs within each experiment fan out across CPUs; -parallel 1
// restores strictly serial execution (the output is byte-identical either
// way — runs are seed-deterministic and results are ordered by sweep
// index, not completion order).
//
// Examples:
//
//	cocoaexp              # the full paper-scale suite (minutes)
//	cocoaexp -quick       # scaled-down smoke suite (seconds)
//	cocoaexp -fig 9       # one figure only
//	cocoaexp -parallel 1  # serial runs (default: all CPUs)
//
// Profiling: -cpuprofile, -memprofile and -trace write pprof/trace files
// covering the whole suite, e.g.
//
//	cocoaexp -quick -fig 4 -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cocoa"
	"cocoa/internal/checkpoint"
	"cocoa/internal/obs"
	"cocoa/internal/runner"
	"cocoa/internal/telemetry"
)

// stderr carries progress and diagnostics; a package variable so tests
// can capture it. Figure output always goes to run's writer.
var stderr io.Writer = os.Stderr

func main() {
	// Interrupt or SIGTERM cancels the suite cooperatively: in-flight
	// simulation runs observe the context and stop instead of being killed
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cocoaexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cocoaexp", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "which figure to regenerate: 1,4,5,6,7,8,9,10,ext,power,skew,terrain,reports,failures,faults,scale,baseline,ablations or all")
		index     = fs.String("index", "", "MAC neighbor index for every run: grid (default) or scan (O(n) reference; byte-identical results)")
		gridStats = fs.String("gridstats", "", "Bayesian grid statistics read path: incremental (default) or eager (full-scan reference; equivalent within 1e-9)")
		quick     = fs.Bool("quick", false, "scaled-down runs (12 robots, 300 s)")
		seed      = fs.Int64("seed", 1, "experiment seed")
		parallel  = fs.Int("parallel", 0, "concurrent simulation runs per experiment (0 = all CPUs, 1 = serial)")
		progress  = fs.Bool("progress", false, "print per-run progress while an experiment executes")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole suite to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile (captured at exit) to this file")
		traceOut  = fs.String("trace", "", "write a runtime execution trace to this file")
		telemOut  = fs.String("telemetry", "", "enable runtime telemetry and write the final snapshot as JSON to this file")
		debugAddr = fs.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060")
		ckptDir   = fs.String("checkpoint", "", "persist resumable snapshots beneath this directory, one run-<index>/latest.ckpt per sweep run")
		ckptEvery = fs.Int("checkpoint-every", 0, "snapshot cadence in sampling ticks (0 = default cadence)")
		resumeCk  = fs.String("resume", "", "resume one interrupted run from this snapshot file and print its summary (ignores -fig)")
	)
	logOpts := obs.AddLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logOpts.NewLogger(stderr)
	if err != nil {
		return err
	}

	if *resumeCk != "" {
		return resumeRun(ctx, *resumeCk, w)
	}

	if *telemOut != "" || *debugAddr != "" {
		telemetry.Default.SetEnabled(true)
	}
	if *debugAddr != "" {
		actual, err := startDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		logger.Info("debug server listening", "addr", "http://"+actual+"/debug/vars")
	}

	prof := runner.ProfileConfig{CPUPath: *cpuProf, MemPath: *memProf, TracePath: *traceOut}
	if prof.Enabled() {
		stop, err := runner.StartProfiles(prof)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				logger.Error("profile shutdown failed", "error", err.Error())
			}
		}()
	}

	switch *index {
	case "", "grid", "scan":
	default:
		return fmt.Errorf("unknown -index %q (grid or scan)", *index)
	}
	switch *gridStats {
	case "", "incremental", "eager":
	default:
		return fmt.Errorf("unknown -gridstats %q (incremental or eager)", *gridStats)
	}
	opts := cocoa.ExperimentOptions{Seed: *seed, NeighborIndex: *index, GridStats: *gridStats, Logger: logger}
	if *quick {
		opts.DurationS = 300
		opts.NumRobots = 12
		opts.CalibrationSamples = 60000
		opts.GridCellM = 4
	}
	opts.CheckpointDir = *ckptDir
	opts.CheckpointEvery = *ckptEvery
	opts.Parallelism = *parallel
	if opts.Parallelism <= 0 {
		opts.Parallelism = cocoa.MaxParallelism()
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "\r  run %d/%d", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}

	start := time.Now()
	matched := false
	for _, d := range cocoa.Experiments() {
		if *fig != "all" && *fig != d.Flag && *fig != d.Name {
			continue
		}
		matched = true
		render, ok := renderers[d.Name]
		if !ok {
			return fmt.Errorf("experiment %q has no renderer", d.Name)
		}
		var before telemetry.Snapshot
		if telemetry.Default.Enabled() && *progress {
			before = telemetry.Default.Snapshot()
		}
		res, err := d.Run(ctx, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		header(w, d.Title)
		if err := render(w, res); err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		if telemetry.Default.Enabled() && *progress {
			printTelemetryDelta(stderr, telemetry.Diff(before, telemetry.Default.Snapshot()))
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (see -fig usage)", *fig)
	}
	fmt.Fprintf(w, "\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if *telemOut != "" {
		if err := writeTelemetrySnapshot(*telemOut); err != nil {
			return err
		}
	}
	return nil
}

// resumeRun continues one interrupted simulation run from a snapshot file:
// provenance first (label, capture tick, per-subsystem digests), then the
// completed run's summary. A replay that no longer matches the snapshot is
// reported as the divergence it is — per diverged subsystem — rather than
// as a generic failure.
func resumeRun(ctx context.Context, path string, w io.Writer) error {
	snap, err := cocoa.ReadSnapshot(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot %s: tick %d, t=%.0fs", path, snap.TickIndex, snap.SimNowS)
	if snap.Label != "" {
		fmt.Fprintf(w, ", label %q", snap.Label)
	}
	fmt.Fprintln(w)
	for _, d := range snap.Digests {
		fmt.Fprintf(w, "  digest %-10s %016x\n", d.Name, d.Sum)
	}
	res, err := cocoa.ResumeFrom(ctx, snap)
	if err != nil {
		var div *checkpoint.DivergenceError
		if errors.As(err, &div) {
			fmt.Fprintf(w, "replay DIVERGED at tick %d; mismatched subsystems: %s\n",
				div.Tick, strings.Join(div.Subsystems, ", "))
			fmt.Fprintln(w, "(the snapshot was written by different simulation code, or nondeterminism crept in)")
		}
		return err
	}
	fmt.Fprintf(w, "resumed to completion: mean error %.2f m over %d samples\n",
		res.MeanError(), len(res.Times))
	return nil
}

// renderers maps registry names to output formatting. Every registered
// experiment must have an entry; run() errors out otherwise.
var renderers = map[string]func(io.Writer, any) error{
	"fig1":               renderFig1,
	"fig4":               renderFig4,
	"fig5":               renderFig5,
	"fig6":               renderFig6,
	"fig7":               renderFig7,
	"fig8":               renderFig8,
	"fig9":               renderFig9,
	"fig10":              renderFig10,
	"ext-secondary":      renderExtensionSecondary,
	"ext-power":          renderPowerControl,
	"ext-skew":           renderClockSkew,
	"ext-terrain":        renderTerrain,
	"ext-reports":        renderReports,
	"scale":              renderScale,
	"rob-failures":       renderFailures,
	"rob-replication":    renderReplication,
	"rob-faults":         renderFaults,
	"baseline":           renderBaseline,
	"ablation-pruning":   renderAblationPruning,
	"ablation-k":         renderAblationK,
	"ablation-grid":      renderAblationGrid,
	"ablation-localizer": renderAblationLocalizer,
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// result asserts the registry payload to the renderer's concrete type.
func result[T any](v any) (T, error) {
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("unexpected result type %T", v)
	}
	return t, nil
}

func renderFig1(w io.Writer, v any) error {
	res, err := result[*cocoa.Fig1Result](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "RSSI %.0f dBm: gaussian=%v mean=%.1f m (paper Fig 1a: Gaussian)\n",
		res.Strong.RSSIDBm, res.Strong.IsGaussian, res.Strong.MeanDist)
	fmt.Fprintf(w, "RSSI %.0f dBm: gaussian=%v mean=%.1f m (paper Fig 1b: non-Gaussian)\n",
		res.Weak.RSSIDBm, res.Weak.IsGaussian, res.Weak.MeanDist)
	return nil
}

func printSeries(w io.Writer, s cocoa.Series, every int) {
	fmt.Fprintf(w, "  %s: mean=%.2f m", s.Label, s.Mean())
	fmt.Fprintf(w, "  [")
	for i := 0; i < len(s.Times); i += every {
		fmt.Fprintf(w, " %.0fs:%.1f", s.Times[i], s.Values[i])
	}
	fmt.Fprintf(w, " ]\n")
}

func renderFig4(w io.Writer, v any) error {
	series, err := result[[]cocoa.Series](v)
	if err != nil {
		return err
	}
	for _, s := range series {
		printSeries(w, s, max(1, len(s.Times)/10))
		fmt.Fprintf(w, "    final error: %.1f m (paper: >100 m after 30 min)\n",
			s.Values[len(s.Values)-1])
	}
	return nil
}

func renderFig5(w io.Writer, v any) error {
	res, err := result[*cocoa.Fig5Result](v)
	if err != nil {
		return err
	}
	n := len(res.True)
	for i := 0; i < n; i += max(1, n/8) {
		fmt.Fprintf(w, "  t=%4ds true=%v est=%v\n", i, res.True[i], res.Estimated[i])
	}
	fmt.Fprintf(w, "  final gap between real and estimated position: %.1f m\n", res.FinalGapM)
	return nil
}

func renderFig6(w io.Writer, v any) error {
	series, err := result[[]cocoa.Series](v)
	if err != nil {
		return err
	}
	for _, s := range series {
		printSeries(w, s, max(1, len(s.Times)/10))
	}
	return nil
}

func renderFig7(w io.Writer, v any) error {
	results, err := result[[]cocoa.Fig7Result](v)
	if err != nil {
		return err
	}
	for _, r := range results {
		warm := 110.0
		fmt.Fprintf(w, "vmax = %.1f m/s (steady-state means past first window):\n", r.VMax)
		fmt.Fprintf(w, "  odometry-only: %.1f m\n", cocoa.SteadyStateMean(r.Odometry, warm))
		fmt.Fprintf(w, "  rf-only:       %.1f m (paper ~33 m at 2 m/s)\n", cocoa.SteadyStateMean(r.RFOnly, warm))
		fmt.Fprintf(w, "  cocoa:         %.1f m (paper ~6.5 m at 2 m/s)\n", cocoa.SteadyStateMean(r.CoCoA, warm))
	}
	return nil
}

func renderFig8(w io.Writer, v any) error {
	snaps, err := result[[]cocoa.CDFSnapshot](v)
	if err != nil {
		return err
	}
	for _, s := range snaps {
		fmt.Fprintf(w, "  %-24s (t=%.0fs): P90 error = %.1f m; P(err<10m) = %.0f%%\n",
			s.Label, s.TimeS, s.P90, 100*fractionBelow(s, 10))
	}
	fmt.Fprintln(w, "  (paper: >90% of robots below 10 m)")
	return nil
}

func fractionBelow(s cocoa.CDFSnapshot, x float64) float64 {
	frac := 0.0
	for i, e := range s.Errors {
		if e <= x {
			frac = s.Probs[i]
		}
	}
	return frac
}

func renderFig9(w io.Writer, v any) error {
	rows, err := result[[]cocoa.Fig9Row](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %6s %12s %12s %14s %14s %9s\n",
		"T(s)", "mean err(m)", "fix rate", "coord (J)", "no-coord (J)", "savings")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6.0f %12.2f %11.0f%% %14.0f %14.0f %8.1fx\n",
			r.PeriodS, r.MeanErrorM, 100*r.FixRate, r.CoordEnergyJ, r.NoCoordEnergyJ, r.SavingsRatio)
	}
	fmt.Fprintln(w, "  (paper: T=10 worse than T=50; savings 2.6x-8x growing with T)")
	return nil
}

func renderFig10(w io.Writer, v any) error {
	rows, err := result[[]cocoa.Fig10Row](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %9s %12s %12s %10s\n", "equipped", "mean err(m)", "P90 err(m)", "fix rate")
	for _, r := range rows {
		fmt.Fprintf(w, "  %9d %12.2f %12.2f %9.0f%%\n",
			r.Equipped, r.MeanErrorM, r.P90ErrorM, 100*r.FixRate)
	}
	fmt.Fprintln(w, "  (paper: 35 -> 5.2 m, 25 -> 5.9 m, 15 -> ~8 m)")
	return nil
}

func renderExtensionSecondary(w io.Writer, v any) error {
	rows, err := result[[]cocoa.ExtensionRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %9s %15s %15s %12s %12s\n",
		"equipped", "baseline (m)", "secondary (m)", "base fix", "sec fix")
	for _, r := range rows {
		fmt.Fprintf(w, "  %9d %15.2f %15.2f %11.0f%% %11.0f%%\n",
			r.Equipped, r.BaselineMeanM, r.SecondaryMeanM,
			100*r.BaselineFixRate, 100*r.SecondaryFixRate)
	}
	return nil
}

func renderPowerControl(w io.Writer, v any) error {
	rows, err := result[[]cocoa.PowerControlRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %8s %10s %12s %10s %12s\n",
		"tx(dBm)", "range(m)", "mean err(m)", "fix rate", "energy (J)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8.0f %10.0f %12.2f %9.0f%% %12.0f\n",
			r.TxPowerDBm, r.MeanRangeM, r.MeanErrorM, 100*r.FixRate, r.EnergyJ)
	}
	return nil
}

func renderClockSkew(w io.Writer, v any) error {
	rows, err := result[[]cocoa.ClockSkewRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %12s %6s %12s %10s %14s\n",
		"drift(s/per)", "SYNC", "mean err(m)", "fix rate", "missed-asleep")
	for _, r := range rows {
		fmt.Fprintf(w, "  %12.1f %6v %12.2f %9.0f%% %14d\n",
			r.DriftSigmaS, r.SyncEnabled, r.MeanErrorM, 100*r.FixRate, r.MissedPkts)
	}
	return nil
}

func renderTerrain(w io.Writer, v any) error {
	rows, err := result[[]cocoa.TerrainRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-15s %10s %12s %12s\n", "mode", "roughness", "mean err(m)", "final (m)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s %10.0f %12.2f %12.2f\n", r.Mode, r.Amplitude, r.MeanErrorM, r.FinalM)
	}
	return nil
}

func renderReports(w io.Writer, v any) error {
	rows, err := result[[]cocoa.ReportingRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %6s %10s %12s %10s %12s\n",
		"T(s)", "reports", "delivered", "hops avg", "loc err(m)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6.0f %10d %11.0f%% %10.2f %12.2f\n",
			r.PeriodS, r.ReportsSent, 100*r.DeliveryRate, r.MeanHops, r.MeanErrorM)
	}
	return nil
}

func renderScale(w io.Writer, v any) error {
	rows, err := result[[]cocoa.ScaleRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %7s %9s %9s %12s %10s %10s %11s %12s\n",
		"robots", "equipped", "side(m)", "mean err(m)", "fix rate", "sent", "delivered", "belowSense")
	for _, r := range rows {
		fmt.Fprintf(w, "  %7d %9d %9.0f %12.2f %9.0f%% %10d %11d %12d\n",
			r.Robots, r.Equipped, r.AreaSideM, r.MeanErrorM, 100*r.FixRate,
			r.MACSent, r.MACDelivered, r.MACBelowSense)
	}
	fmt.Fprintln(w, "  (expected: per-frame MAC cost stays local, not O(team); error degrades gently, no collapse)")
	return nil
}

func renderFailures(w io.Writer, v any) error {
	rows, err := result[[]cocoa.FailureRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %10s %15s %14s %10s\n", "failed", "before (m)", "after (m)", "fix rate")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %15.2f %14.2f %9.0f%%\n",
			r.FailedEquipped, r.MeanBeforeM, r.MeanAfterM, 100*r.FixRate)
	}
	return nil
}

func renderFaults(w io.Writer, v any) error {
	rows, err := result[[]cocoa.FaultRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %7s %8s %12s %11s %10s %8s %8s\n",
		"loss", "crashed", "mean err(m)", "uncovered", "fix rate", "drops", "crashes")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6.0f%% %7.0f%% %12.2f %10.0f%% %9.0f%% %8d %8d\n",
			100*r.LossRate, 100*r.CrashFraction, r.MeanErrorM,
			100*r.Uncovered, 100*r.FixRate, r.FaultDrops, r.Crashes)
	}
	fmt.Fprintln(w, "  (expected: error and uncovered fraction rise with fault intensity; no collapse)")
	return nil
}

func renderReplication(w io.Writer, v any) error {
	rep, err := result[cocoa.Replication](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d seeds: mean err %.2f m (std %.2f, min %.2f, max %.2f)\n",
		rep.Seeds, rep.MeanErrorM, rep.StdErrorM, rep.MinM, rep.MaxM)
	return nil
}

func renderBaseline(w io.Writer, v any) error {
	rows, err := result[[]cocoa.BaselineRow](v)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-26s %9s %12s %12s %12s\n",
		"system", "equipped", "mean err(m)", "final err(m)", "mobility")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s %9d %12.2f %12.2f %11.0f%%\n",
			r.System, r.EquippedRobots, r.MeanErrorM, r.FinalErrorM, r.MobilityDutyPct)
	}
	return nil
}

func renderAblationPruning(w io.Writer, v any) error {
	rows, err := result[[]cocoa.AblationPruningRow](v)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  pruning=%-5v dataTx=%4d delivered=%4d queries=%4d forwarders=%3d err=%.2fm\n",
			r.Pruning, r.DataSent, r.DataDelivered, r.QueriesSent, r.Forwarders, r.MeanErrorM)
	}
	return nil
}

func renderAblationK(w io.Writer, v any) error {
	rows, err := result[[]cocoa.AblationKRow](v)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  k=%d: err=%.2fm fixRate=%.0f%% energy=%.0fJ framesSent=%d\n",
			r.K, r.MeanErrorM, 100*r.FixRate, r.CoordEnergyJ, r.BeaconsSent)
	}
	return nil
}

func renderAblationGrid(w io.Writer, v any) error {
	rows, err := result[[]cocoa.AblationGridRow](v)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  cell=%.0fm (%6d cells): err=%.2fm\n", r.CellM, r.WallSenseN, r.MeanErrorM)
	}
	return nil
}

func renderAblationLocalizer(w io.Writer, v any) error {
	rows, err := result[[]cocoa.AblationLocalizerRow](v)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  backend=%-8s err=%.2fm fixRate=%.0f%%\n",
			r.Backend, r.MeanErrorM, 100*r.FixRate)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
