// Command cocoaexp regenerates every figure of the paper's evaluation
// (Section 4) plus the extension and ablation studies from DESIGN.md, and
// prints the series/tables that EXPERIMENTS.md records.
//
// Examples:
//
//	cocoaexp              # the full paper-scale suite (minutes)
//	cocoaexp -quick       # scaled-down smoke suite (seconds)
//	cocoaexp -fig 9       # one figure only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cocoa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cocoaexp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cocoaexp", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "which figure to regenerate: 1,4,5,6,7,8,9,10,ext,power,skew,terrain,reports,failures,baseline,ablations or all")
		quick = fs.Bool("quick", false, "scaled-down runs (12 robots, 300 s)")
		seed  = fs.Int64("seed", 1, "experiment seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := cocoa.ExperimentOptions{Seed: *seed}
	if *quick {
		opts.DurationS = 300
		opts.NumRobots = 12
		opts.CalibrationSamples = 60000
		opts.GridCellM = 4
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	start := time.Now()

	if want("1") {
		if err := fig1(w, opts); err != nil {
			return err
		}
	}
	if want("4") {
		if err := fig4(w, opts); err != nil {
			return err
		}
	}
	if want("5") {
		if err := fig5(w, opts); err != nil {
			return err
		}
	}
	if want("6") {
		if err := fig6(w, opts); err != nil {
			return err
		}
	}
	if want("7") {
		if err := fig7(w, opts); err != nil {
			return err
		}
	}
	if want("8") {
		if err := fig8(w, opts); err != nil {
			return err
		}
	}
	if want("9") {
		if err := fig9(w, opts); err != nil {
			return err
		}
	}
	if want("10") {
		if err := fig10(w, opts); err != nil {
			return err
		}
	}
	if want("ext") {
		if err := extension(w, opts); err != nil {
			return err
		}
	}
	if want("power") {
		if err := powerControl(w, opts); err != nil {
			return err
		}
	}
	if want("skew") {
		if err := clockSkew(w, opts); err != nil {
			return err
		}
	}
	if want("terrain") {
		if err := terrainStudy(w, opts); err != nil {
			return err
		}
	}
	if want("reports") {
		if err := reports(w, opts); err != nil {
			return err
		}
	}
	if want("failures") {
		if err := failures(w, opts); err != nil {
			return err
		}
	}
	if want("baseline") {
		if err := baseline(w, opts); err != nil {
			return err
		}
	}
	if want("ablations") {
		if err := ablations(w, opts); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func fig1(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 1 — RSSI -> distance PDFs from calibration")
	res, err := cocoa.RunFig1(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "RSSI %.0f dBm: gaussian=%v mean=%.1f m (paper Fig 1a: Gaussian)\n",
		res.Strong.RSSIDBm, res.Strong.IsGaussian, res.Strong.MeanDist)
	fmt.Fprintf(w, "RSSI %.0f dBm: gaussian=%v mean=%.1f m (paper Fig 1b: non-Gaussian)\n",
		res.Weak.RSSIDBm, res.Weak.IsGaussian, res.Weak.MeanDist)
	return nil
}

func printSeries(w io.Writer, s cocoa.Series, every int) {
	fmt.Fprintf(w, "  %s: mean=%.2f m", s.Label, s.Mean())
	fmt.Fprintf(w, "  [")
	for i := 0; i < len(s.Times); i += every {
		fmt.Fprintf(w, " %.0fs:%.1f", s.Times[i], s.Values[i])
	}
	fmt.Fprintf(w, " ]\n")
}

func fig4(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 4 — localization error over time, odometry only")
	series, err := cocoa.RunFig4(opts)
	if err != nil {
		return err
	}
	for _, s := range series {
		printSeries(w, s, max(1, len(s.Times)/10))
		fmt.Fprintf(w, "    final error: %.1f m (paper: >100 m after 30 min)\n",
			s.Values[len(s.Values)-1])
	}
	return nil
}

func fig5(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 5 — an example of odometry error (one robot)")
	res, err := cocoa.RunFig5(opts)
	if err != nil {
		return err
	}
	n := len(res.True)
	for i := 0; i < n; i += max(1, n/8) {
		fmt.Fprintf(w, "  t=%4ds true=%v est=%v\n", i, res.True[i], res.Estimated[i])
	}
	fmt.Fprintf(w, "  final gap between real and estimated position: %.1f m\n", res.FinalGapM)
	return nil
}

func fig6(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 6 — RF localization only, beacon-period sweep")
	series, err := cocoa.RunFig6(opts)
	if err != nil {
		return err
	}
	for _, s := range series {
		printSeries(w, s, max(1, len(s.Times)/10))
	}
	return nil
}

func fig7(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 7 — CoCoA vs odometry-only vs RF-only (T = 100 s)")
	results, err := cocoa.RunFig7(opts)
	if err != nil {
		return err
	}
	for _, r := range results {
		warm := 110.0
		fmt.Fprintf(w, "vmax = %.1f m/s (steady-state means past first window):\n", r.VMax)
		fmt.Fprintf(w, "  odometry-only: %.1f m\n", cocoa.SteadyStateMean(r.Odometry, warm))
		fmt.Fprintf(w, "  rf-only:       %.1f m (paper ~33 m at 2 m/s)\n", cocoa.SteadyStateMean(r.RFOnly, warm))
		fmt.Fprintf(w, "  cocoa:         %.1f m (paper ~6.5 m at 2 m/s)\n", cocoa.SteadyStateMean(r.CoCoA, warm))
	}
	return nil
}

func fig8(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 8 — error CDF at three time instances (T = 100 s)")
	snaps, err := cocoa.RunFig8(opts)
	if err != nil {
		return err
	}
	for _, s := range snaps {
		fmt.Fprintf(w, "  %-24s (t=%.0fs): P90 error = %.1f m; P(err<10m) = %.0f%%\n",
			s.Label, s.TimeS, s.P90, 100*fractionBelow(s, 10))
	}
	fmt.Fprintln(w, "  (paper: >90% of robots below 10 m)")
	return nil
}

func fractionBelow(s cocoa.CDFSnapshot, x float64) float64 {
	frac := 0.0
	for i, e := range s.Errors {
		if e <= x {
			frac = s.Probs[i]
		}
	}
	return frac
}

func fig9(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 9 — impact of beacon period T on error and energy")
	rows, err := cocoa.RunFig9(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %6s %12s %12s %14s %14s %9s\n",
		"T(s)", "mean err(m)", "fix rate", "coord (J)", "no-coord (J)", "savings")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6.0f %12.2f %11.0f%% %14.0f %14.0f %8.1fx\n",
			r.PeriodS, r.MeanErrorM, 100*r.FixRate, r.CoordEnergyJ, r.NoCoordEnergyJ, r.SavingsRatio)
	}
	fmt.Fprintln(w, "  (paper: T=10 worse than T=50; savings 2.6x-8x growing with T)")
	return nil
}

func fig10(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Figure 10 — impact of the number of localization devices")
	rows, err := cocoa.RunFig10(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %9s %12s %12s %10s\n", "equipped", "mean err(m)", "P90 err(m)", "fix rate")
	for _, r := range rows {
		fmt.Fprintf(w, "  %9d %12.2f %12.2f %9.0f%%\n",
			r.Equipped, r.MeanErrorM, r.P90ErrorM, 100*r.FixRate)
	}
	fmt.Fprintln(w, "  (paper: 35 -> 5.2 m, 25 -> 5.9 m, 15 -> ~8 m)")
	return nil
}

func extension(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Extension — secondary beacons from localized unequipped robots")
	rows, err := cocoa.RunExtensionSecondary(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %9s %15s %15s %12s %12s\n",
		"equipped", "baseline (m)", "secondary (m)", "base fix", "sec fix")
	for _, r := range rows {
		fmt.Fprintf(w, "  %9d %15.2f %15.2f %11.0f%% %11.0f%%\n",
			r.Equipped, r.BaselineMeanM, r.SecondaryMeanM,
			100*r.BaselineFixRate, 100*r.SecondaryFixRate)
	}
	return nil
}

func powerControl(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Extension — transmit power control (future work, Sec. 6)")
	rows, err := cocoa.RunExtensionPowerControl(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %8s %10s %12s %10s %12s\n",
		"tx(dBm)", "range(m)", "mean err(m)", "fix rate", "energy (J)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8.0f %10.0f %12.2f %9.0f%% %12.0f\n",
			r.TxPowerDBm, r.MeanRangeM, r.MeanErrorM, 100*r.FixRate, r.EnergyJ)
	}
	return nil
}

func clockSkew(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Extension — clock drift vs SYNC (why coordination needs MRMM)")
	rows, err := cocoa.RunExtensionClockSkew(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %12s %6s %12s %10s %14s\n",
		"drift(s/per)", "SYNC", "mean err(m)", "fix rate", "missed-asleep")
	for _, r := range rows {
		fmt.Fprintf(w, "  %12.1f %6v %12.2f %9.0f%% %14d\n",
			r.DriftSigmaS, r.SyncEnabled, r.MeanErrorM, 100*r.FixRate, r.MissedPkts)
	}
	return nil
}

func terrainStudy(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Extension — uneven terrain (paper introduction)")
	rows, err := cocoa.RunExtensionTerrain(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-15s %10s %12s %12s\n", "mode", "roughness", "mean err(m)", "final (m)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s %10.0f %12.2f %12.2f\n", r.Mode, r.Amplitude, r.MeanErrorM, r.FinalM)
	}
	return nil
}

func reports(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Extension — status reports to the controller (geographic unicast)")
	rows, err := cocoa.RunExtensionReporting(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %6s %10s %12s %10s %12s\n",
		"T(s)", "reports", "delivered", "hops avg", "loc err(m)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6.0f %10d %11.0f%% %10.2f %12.2f\n",
			r.PeriodS, r.ReportsSent, 100*r.DeliveryRate, r.MeanHops, r.MeanErrorM)
	}
	return nil
}

func failures(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Robustness — equipped-robot failures mid-run")
	rows, err := cocoa.RunFailureInjection(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %10s %15s %14s %10s\n", "failed", "before (m)", "after (m)", "fix rate")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %15.2f %14.2f %9.0f%%\n",
			r.FailedEquipped, r.MeanBeforeM, r.MeanAfterM, 100*r.FixRate)
	}

	header(w, "Robustness — cross-seed replication of the headline metric")
	rep, err := cocoa.RunReplication(opts, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d seeds: mean err %.2f m (std %.2f, min %.2f, max %.2f)\n",
		rep.Seeds, rep.MeanErrorM, rep.StdErrorM, rep.MinM, rep.MaxM)
	return nil
}

func baseline(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Baseline — CoCoA vs Cooperative Positioning (Kurazume et al.)")
	rows, err := cocoa.RunBaselineCoopPos(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-26s %9s %12s %12s %12s\n",
		"system", "equipped", "mean err(m)", "final err(m)", "mobility")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s %9d %12.2f %12.2f %11.0f%%\n",
			r.System, r.EquippedRobots, r.MeanErrorM, r.FinalErrorM, r.MobilityDutyPct)
	}
	return nil
}

func ablations(w io.Writer, opts cocoa.ExperimentOptions) error {
	header(w, "Ablation — MRMM mesh pruning vs plain ODMRP")
	prows, err := cocoa.RunAblationPruning(opts)
	if err != nil {
		return err
	}
	for _, r := range prows {
		fmt.Fprintf(w, "  pruning=%-5v dataTx=%4d delivered=%4d queries=%4d forwarders=%3d err=%.2fm\n",
			r.Pruning, r.DataSent, r.DataDelivered, r.QueriesSent, r.Forwarders, r.MeanErrorM)
	}

	header(w, "Ablation — beacon redundancy k")
	krows, err := cocoa.RunAblationK(opts)
	if err != nil {
		return err
	}
	for _, r := range krows {
		fmt.Fprintf(w, "  k=%d: err=%.2fm fixRate=%.0f%% energy=%.0fJ framesSent=%d\n",
			r.K, r.MeanErrorM, 100*r.FixRate, r.CoordEnergyJ, r.BeaconsSent)
	}

	header(w, "Ablation — Bayesian grid resolution")
	grows, err := cocoa.RunAblationGrid(opts)
	if err != nil {
		return err
	}
	for _, r := range grows {
		fmt.Fprintf(w, "  cell=%.0fm (%6d cells): err=%.2fm\n", r.CellM, r.WallSenseN, r.MeanErrorM)
	}

	header(w, "Ablation — localization backend (grid vs Monte Carlo)")
	lrows, err := cocoa.RunAblationLocalizer(opts)
	if err != nil {
		return err
	}
	for _, r := range lrows {
		fmt.Fprintf(w, "  backend=%-8s err=%.2fm fixRate=%.0f%%\n",
			r.Backend, r.MeanErrorM, 100*r.FixRate)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
