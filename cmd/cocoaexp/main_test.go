package main

import (
	"bytes"
	"strings"
	"testing"

	"cocoa"
)

func TestRunSingleFigureQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-fig", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 9") {
		t.Errorf("missing Figure 9 section:\n%s", out)
	}
	if strings.Contains(out, "Figure 4") {
		t.Error("-fig 9 also ran Figure 4")
	}
	if !strings.Contains(out, "savings") {
		t.Error("Figure 9 output missing savings column")
	}
}

func TestRunFig1Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-fig", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gaussian=true") || !strings.Contains(out, "gaussian=false") {
		t.Errorf("Figure 1 output missing regimes:\n%s", out)
	}
}

func TestRunFig5Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-fig", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "final gap") {
		t.Error("Figure 5 output missing final gap")
	}
}

func TestRunAblationsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-fig", "ablations"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pruning=true", "k=1", "cell=8m"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func snapshotForTest() cocoa.CDFSnapshot {
	return cocoa.CDFSnapshot{
		Errors: []float64{1, 2, 5, 20},
		Probs:  []float64{0.25, 0.5, 0.5, 1},
	}
}

func TestFractionBelow(t *testing.T) {
	snap := snapshotForTest()
	if got := fractionBelow(snap, 5); got != 0.5 {
		t.Errorf("fractionBelow(5) = %v, want 0.5", got)
	}
	if got := fractionBelow(snap, 0.5); got != 0 {
		t.Errorf("fractionBelow(0.5) = %v, want 0", got)
	}
	if got := fractionBelow(snap, 100); got != 1 {
		t.Errorf("fractionBelow(100) = %v, want 1", got)
	}
}
