package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"cocoa"
	"cocoa/internal/checkpoint"
)

func TestRunSingleFigureQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 9") {
		t.Errorf("missing Figure 9 section:\n%s", out)
	}
	if strings.Contains(out, "Figure 4") {
		t.Error("-fig 9 also ran Figure 4")
	}
	if !strings.Contains(out, "savings") {
		t.Error("Figure 9 output missing savings column")
	}
}

func TestRunFig1Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gaussian=true") || !strings.Contains(out, "gaussian=false") {
		t.Errorf("Figure 1 output missing regimes:\n%s", out)
	}
}

func TestRunFig5Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "final gap") {
		t.Error("Figure 5 output missing final gap")
	}
}

func TestRunAblationsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "ablations"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pruning=true", "k=1", "cell=8m"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestRunScaleQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "scale"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Scale — swarm sweep") {
		t.Errorf("missing scale section:\n%s", out)
	}
	if !strings.Contains(out, "belowSense") {
		t.Errorf("scale table missing belowSense column:\n%s", out)
	}
}

// -index scan must reproduce the grid default byte-for-byte: the spatial
// index is a performance device, not a behavior switch (DESIGN.md §12).
func TestRunIndexToggleIdenticalOutput(t *testing.T) {
	trim := func(t *testing.T, s string) string {
		t.Helper()
		i := strings.LastIndex(s, "\ntotal wall time")
		if i < 0 {
			t.Fatalf("output missing wall-time trailer:\n%s", s)
		}
		return s[:i]
	}
	var grid, scan bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "scale", "-index", "grid"}, &grid); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "-fig", "scale", "-index", "scan"}, &scan); err != nil {
		t.Fatal(err)
	}
	if got, want := trim(t, scan.String()), trim(t, grid.String()); got != want {
		t.Errorf("-index scan output differs from grid:\n--- grid ---\n%s\n--- scan ---\n%s", want, got)
	}
}

func TestRunRejectsBadIndex(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-quick", "-fig", "scale", "-index", "quadtree"}, &buf)
	if err == nil {
		t.Fatal("bad -index value accepted")
	}
	if !strings.Contains(err.Error(), "quadtree") {
		t.Errorf("error does not name the bad index: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-quick", "-fig", "no-such-figure"}, &buf)
	if err == nil {
		t.Fatal("unknown -fig value accepted")
	}
	if !strings.Contains(err.Error(), "no-such-figure") {
		t.Errorf("error does not name the bad selector: %v", err)
	}
}

// Every registered experiment must have a renderer, or the full suite
// aborts at that experiment.
func TestRenderersCoverRegistry(t *testing.T) {
	for _, d := range cocoa.Experiments() {
		if _, ok := renderers[d.Name]; !ok {
			t.Errorf("experiment %q has no renderer", d.Name)
		}
	}
}

// Golden determinism: -parallel must not change the bytes written for ANY
// registered experiment — runs are seed-deterministic and results land by
// sweep index, not completion order. Covering the whole registry means a
// new experiment cannot ship with order-dependent output.
func TestRunOutputIdenticalAcrossParallelism(t *testing.T) {
	trim := func(t *testing.T, s string) string {
		t.Helper()
		// The wall-time trailer is the one legitimately nondeterministic line.
		i := strings.LastIndex(s, "\ntotal wall time")
		if i < 0 {
			t.Fatalf("output missing wall-time trailer:\n%s", s)
		}
		return s[:i]
	}
	for _, d := range cocoa.Experiments() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			var serial, parallel bytes.Buffer
			if err := run(context.Background(), []string{"-quick", "-fig", d.Name, "-parallel", "1"}, &serial); err != nil {
				t.Fatal(err)
			}
			if err := run(context.Background(), []string{"-quick", "-fig", d.Name, "-parallel", "4"}, &parallel); err != nil {
				t.Fatal(err)
			}
			if got, want := trim(t, parallel.String()), trim(t, serial.String()); got != want {
				t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

func snapshotForTest() cocoa.CDFSnapshot {
	return cocoa.CDFSnapshot{
		Errors: []float64{1, 2, 5, 20},
		Probs:  []float64{0.25, 0.5, 0.5, 1},
	}
}

func TestFractionBelow(t *testing.T) {
	snap := snapshotForTest()
	if got := fractionBelow(snap, 5); got != 0.5 {
		t.Errorf("fractionBelow(5) = %v, want 0.5", got)
	}
	if got := fractionBelow(snap, 0.5); got != 0 {
		t.Errorf("fractionBelow(0.5) = %v, want 0", got)
	}
	if got := fractionBelow(snap, 100); got != 1 {
		t.Errorf("fractionBelow(100) = %v, want 1", got)
	}
}

// TestRunCheckpointSweepAndResume drives the operational loop end to end:
// a quick sweep persists per-run snapshots, then -resume continues one of
// them and reports its provenance. The sweep output itself must be
// unchanged by checkpointing.
func TestRunCheckpointSweepAndResume(t *testing.T) {
	dir := t.TempDir()
	var plain, ckpt bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "9", "-parallel", "1"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "-fig", "9", "-parallel", "1",
		"-checkpoint", dir, "-checkpoint-every", "60"}, &ckpt); err != nil {
		t.Fatal(err)
	}
	stripWall := func(s string) string {
		i := strings.Index(s, "total wall time")
		if i >= 0 {
			return s[:i]
		}
		return s
	}
	if stripWall(plain.String()) != stripWall(ckpt.String()) {
		t.Fatalf("checkpointing changed experiment output:\n%s\n%s", plain.String(), ckpt.String())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "run-*", "latest.ckpt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("sweep left no snapshots (err=%v)", err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-resume", matches[0]}, &out); err != nil {
		t.Fatalf("resume: %v\n%s", err, out.String())
	}
	for _, want := range []string{"digest sim", "digest rng", "resumed to completion"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("resume output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunResumeDivergenceReport corrupts a snapshot digest and requires
// the CLI to name the diverged subsystem instead of failing opaquely.
func TestRunResumeDivergenceReport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "9", "-parallel", "1",
		"-checkpoint", dir, "-checkpoint-every", "60"}, &buf); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "run-*", "latest.ckpt"))
	if len(matches) == 0 {
		t.Fatal("no snapshots")
	}
	snap, err := checkpoint.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Digests {
		if snap.Digests[i].Name == "robots" {
			snap.Digests[i].Sum ^= 1
		}
	}
	if err := checkpoint.WriteFile(matches[0], snap); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run(context.Background(), []string{"-resume", matches[0]}, &out)
	if err == nil {
		t.Fatal("tampered snapshot resumed successfully")
	}
	if !strings.Contains(out.String(), "DIVERGED") || !strings.Contains(out.String(), "robots") {
		t.Errorf("divergence not reported by subsystem:\n%s", out.String())
	}
}
