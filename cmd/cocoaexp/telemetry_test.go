package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cocoa/internal/telemetry"
)

// resetTelemetry restores the process-global registry around a test that
// enables it; counters accumulated by one test must not leak asserts
// into another.
func resetTelemetry(t *testing.T) {
	t.Helper()
	wasEnabled := telemetry.Default.Enabled()
	t.Cleanup(func() {
		telemetry.Default.SetEnabled(wasEnabled)
		telemetry.Default.Reset()
	})
	telemetry.Default.Reset()
}

func TestTelemetryFlagWritesSnapshot(t *testing.T) {
	resetTelemetry(t)
	path := filepath.Join(t.TempDir(), "telem.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "rob-replication", "-telemetry", path}, &buf); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if !snap.Enabled {
		t.Error("snapshot says telemetry was disabled")
	}
	nonzero := map[string]int64{}
	for _, c := range snap.Counters {
		if c.Value > 0 {
			nonzero[c.Name] = c.Value
		}
	}
	// The acceptance bar: a replication run must move sim, mac, and
	// cocoa instruments.
	for _, name := range []string{"sim.events_dispatched", "mac.sent", "cocoa.beacons_sent"} {
		if nonzero[name] == 0 {
			t.Errorf("counter %s = 0 after a replication run", name)
		}
	}
}

func TestTelemetryFlagInvalidPath(t *testing.T) {
	resetTelemetry(t)
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-quick", "-fig", "1", "-telemetry", filepath.Join(t.TempDir(), "no", "such", "dir", "t.json")}, &buf)
	if err == nil {
		t.Fatal("unwritable -telemetry path accepted")
	}
}

// Snapshot names must be sorted and unique in every category — the
// stable-order contract downstream diffing depends on.
func TestSnapshotRegistryNamesStable(t *testing.T) {
	resetTelemetry(t)
	telemetry.Default.SetEnabled(true)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "failures"}, &buf); err != nil {
		t.Fatal(err)
	}
	snap := telemetry.Default.Snapshot()
	categories := map[string][]string{}
	for _, c := range snap.Counters {
		categories["counters"] = append(categories["counters"], c.Name)
	}
	for _, g := range snap.Gauges {
		categories["gauges"] = append(categories["gauges"], g.Name)
	}
	for _, h := range snap.Histograms {
		categories["histograms"] = append(categories["histograms"], h.Name)
	}
	for _, s := range snap.Spans {
		categories["spans"] = append(categories["spans"], s.Name)
	}
	if len(categories["counters"]) == 0 {
		t.Fatal("no counters registered after a run")
	}
	for cat, names := range categories {
		if !sort.StringsAreSorted(names) {
			t.Errorf("%s not sorted: %v", cat, names)
		}
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				t.Errorf("duplicate %s name %q", cat, n)
			}
			seen[n] = true
		}
	}
}

// -telemetry composes with -cpuprofile: both files must materialize and
// the run must succeed.
func TestTelemetryWithCPUProfile(t *testing.T) {
	resetTelemetry(t)
	dir := t.TempDir()
	telem := filepath.Join(dir, "t.json")
	prof := filepath.Join(dir, "cpu.pprof")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "1", "-telemetry", telem, "-cpuprofile", prof}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{telem, prof} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("%s missing or empty (err=%v)", p, err)
		}
	}
}

func TestDebugAddrServesExpvarAndPprof(t *testing.T) {
	resetTelemetry(t)
	oldStderr := stderr
	var errBuf bytes.Buffer
	stderr = &errBuf
	defer func() { stderr = oldStderr }()

	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "1", "-debug-addr", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	// The actual address is announced on stderr.
	line := errBuf.String()
	const marker = "http://"
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("no listen address announced: %q", line)
	}
	base := strings.TrimSpace(line[i:])
	base = strings.TrimSuffix(base, "/debug/vars")

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var vars struct {
		Telemetry telemetry.Snapshot `json:"telemetry"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	if !vars.Telemetry.Enabled || len(vars.Telemetry.Counters) == 0 {
		t.Errorf("expvar telemetry empty: %+v", vars.Telemetry)
	}
	if !bytes.Contains(get("/debug/pprof/"), []byte("profile")) {
		t.Error("pprof index missing profile links")
	}
}

func TestDebugAddrInvalid(t *testing.T) {
	resetTelemetry(t)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-fig", "1", "-debug-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Fatal("unusable -debug-addr accepted")
	}
}

// With -progress and telemetry on, each experiment appends a counter
// delta table to the progress stream — and those deltas are identical at
// any parallelism, because only sim-deterministic quantities print.
func TestTelemetryDeltaTableDeterministic(t *testing.T) {
	resetTelemetry(t)
	table := func(parallel int) string {
		t.Helper()
		oldStderr := stderr
		var errBuf bytes.Buffer
		stderr = &errBuf
		defer func() { stderr = oldStderr }()
		telemetry.Default.Reset()
		path := filepath.Join(t.TempDir(), "t.json")
		var buf bytes.Buffer
		args := []string{"-quick", "-fig", "failures", "-progress",
			"-telemetry", path, "-parallel", fmt.Sprint(parallel)}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		// Keep only the delta table lines; run counters are interleaved
		// with \r progress updates.
		var lines []string
		for _, l := range strings.Split(errBuf.String(), "\n") {
			if strings.HasPrefix(l, "    ") || strings.HasPrefix(l, "  telemetry:") {
				lines = append(lines, l)
			}
		}
		return strings.Join(lines, "\n")
	}
	serial := table(1)
	if !strings.Contains(serial, "telemetry:") || !strings.Contains(serial, "cocoa.fixes") {
		t.Fatalf("delta table missing expected lines:\n%s", serial)
	}
	if parallel := table(4); parallel != serial {
		t.Errorf("telemetry delta differs across parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
