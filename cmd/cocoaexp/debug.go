package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cocoa/internal/serve"
	"cocoa/internal/telemetry"
)

// startDebugServer serves the shared diagnostics mux (expvar + pprof,
// see internal/serve.DebugMux) on its own listener, returning the actual
// listen address so ":0" works in tests. The server runs for the
// remaining process lifetime; there is nothing to shut down cleanly
// mid-suite.
func startDebugServer(addr string) (string, error) {
	return serve.StartDebugServer(addr)
}

// writeTelemetrySnapshot serializes the final registry state to path as
// indented JSON. Snapshot ordering is name-sorted, so repeated runs of
// the same suite produce diffable files.
func writeTelemetrySnapshot(path string) error {
	b, err := json.MarshalIndent(telemetry.Default.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry snapshot: %w", err)
	}
	return nil
}

// printTelemetryDelta appends one experiment's instrument deltas to the
// progress stream. Only sim-deterministic quantities are printed —
// counters and histogram counts/means, never wall-clock span totals — so
// the table is identical at any parallelism level.
func printTelemetryDelta(w io.Writer, d telemetry.Snapshot) {
	wrote := false
	for _, c := range d.Counters {
		if c.Value == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintln(w, "  telemetry:")
			wrote = true
		}
		fmt.Fprintf(w, "    %-32s %d\n", c.Name, c.Value)
	}
	for _, h := range d.Histograms {
		if h.Count == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintln(w, "  telemetry:")
			wrote = true
		}
		fmt.Fprintf(w, "    %-32s count=%d mean=%.2f\n", h.Name, h.Count, h.Sum/float64(h.Count))
	}
}
