package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"

	"cocoa/internal/telemetry"
)

// publishOnce guards expvar registration: expvar.Publish panics on a
// duplicate name, and tests call run() many times in one process.
var publishOnce sync.Once

// publishTelemetryVar exposes the process-global registry as the expvar
// variable "telemetry", so /debug/vars serves a full snapshot alongside
// the standard memstats/cmdline variables.
func publishTelemetryVar() {
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return telemetry.Default.Snapshot()
		}))
	})
}

// startDebugServer serves expvar under /debug/vars and the pprof suite
// under /debug/pprof/ on its own mux (never http.DefaultServeMux, which
// would leak handlers into importers). It returns the actual listen
// address so ":0" works in tests. The server runs for the remaining
// process lifetime; there is nothing to shut down cleanly mid-suite.
func startDebugServer(addr string) (string, error) {
	publishTelemetryVar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// writeTelemetrySnapshot serializes the final registry state to path as
// indented JSON. Snapshot ordering is name-sorted, so repeated runs of
// the same suite produce diffable files.
func writeTelemetrySnapshot(path string) error {
	b, err := json.MarshalIndent(telemetry.Default.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry snapshot: %w", err)
	}
	return nil
}

// printTelemetryDelta appends one experiment's instrument deltas to the
// progress stream. Only sim-deterministic quantities are printed —
// counters and histogram counts/means, never wall-clock span totals — so
// the table is identical at any parallelism level.
func printTelemetryDelta(w io.Writer, d telemetry.Snapshot) {
	wrote := false
	for _, c := range d.Counters {
		if c.Value == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintln(w, "  telemetry:")
			wrote = true
		}
		fmt.Fprintf(w, "    %-32s %d\n", c.Name, c.Value)
	}
	for _, h := range d.Histograms {
		if h.Count == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintln(w, "  telemetry:")
			wrote = true
		}
		fmt.Fprintf(w, "    %-32s count=%d mean=%.2f\n", h.Name, h.Count, h.Sum/float64(h.Count))
	}
}
