// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark trajectories can be checked in and diffed
// across PRs (see BENCH_PR3.json and the README's "Benchmark tracking"
// section).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_PR3.json
//	benchjson bench.txt            # read a saved log instead of stdin
//
// Regression gate: -compare old.json checks the parsed (or -in) report's
// headline benchmarks against a checked-in baseline and exits non-zero
// when any regresses by more than -threshold (default 25%) in ns/op, or by
// more than -mem-threshold (default 25%) in B/op or allocs/op. The memory
// gate applies wherever the baseline recorded -benchmem columns; a current
// run missing them then fails rather than silently passing:
//
//	go test -bench=. -benchmem ./... | benchjson -compare BENCH_PR3.json
//
// The parser understands the standard testing package line format,
// including -benchmem columns and custom ReportMetric units:
//
//	BenchmarkApplyBeacon-4   13810   86637 ns/op   0 B/op   0 allocs/op
//
// Names are keyed as "<package>.<benchmark>" (the -<GOMAXPROCS> suffix is
// stripped) and emitted in sorted order, so regenerating the file on the
// same machine yields a minimal diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry records one benchmark's measurements.
type Entry struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any additional unit columns (custom b.ReportMetric
	// units, MB/s, ...), keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the checked-in document shape.
type Report struct {
	// Context echoes the goos/goarch/cpu header lines of the log, which
	// anchor what hardware the numbers mean anything on.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks map[string]Entry  `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	compare := fs.String("compare", "", "baseline report to gate against; exit non-zero on headline ns/op regression")
	headline := fs.String("headline", strings.Join(defaultHeadlines, ","),
		"comma-separated benchmark keys gated by -compare")
	threshold := fs.Float64("threshold", 0.25, "allowed fractional ns/op increase before -compare fails")
	memThreshold := fs.Float64("mem-threshold", 0.25,
		"allowed fractional B/op or allocs/op increase before -compare fails")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	rep, err := Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			return err
		}
		return compareHeadlines(stdout, base, rep, splitHeadlines(*headline), *threshold, *memThreshold)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		return os.WriteFile(*out, buf, 0o644)
	}
	_, err = stdout.Write(buf)
	return err
}

// defaultHeadlines are the benchmarks the repo tracks PR-over-PR: the
// serial replication run (the end-to-end hot path), the odometry-only
// figure (the cheapest full-stack workload), the 1000-robot swarm tick
// (the MAC/sampling scale stressor), and the disabled-path record costs
// of the telemetry layer (the records-never-steers overhead the
// observability stack promises stays at a single branch). make check
// gates on these against the checked-in baseline.
var defaultHeadlines = []string{
	"cocoa.BenchmarkReplicationSerial",
	"cocoa.BenchmarkFig4OdometryOnly",
	"cocoa.BenchmarkSwarmSim1000/grid",
	"cocoa/internal/telemetry.BenchmarkCounterIncDisabled",
	"cocoa/internal/telemetry.BenchmarkHistogramObserveDisabled",
	"cocoa/internal/telemetry.BenchmarkSpanSimDisabled",
}

func splitHeadlines(s string) []string {
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareHeadlines checks each named benchmark's ns/op — and, wherever the
// baseline recorded -benchmem columns, its B/op and allocs/op — in cur
// against base and fails when any regressed beyond its threshold. A
// headline missing from either side fails too — silently skipping a
// renamed or deleted benchmark would defeat the gate — and so does a
// current run that dropped the memory columns the baseline has.
func compareHeadlines(w io.Writer, base, cur *Report, headlines []string, threshold, memThreshold float64) error {
	if len(headlines) == 0 {
		return fmt.Errorf("-compare needs at least one -headline benchmark")
	}
	var failures []string
	// gate prints one comparison row and appends a failure when the current
	// value regressed past the allowed fraction. A zero baseline (common
	// for allocs/op on allocation-free paths) admits only a zero current
	// value: any ratio against it would be infinite.
	gate := func(key, unit string, baseV, curV, allowed float64) {
		ratio := 0.0
		if baseV > 0 {
			ratio = curV / baseV
		} else if curV > 0 {
			ratio = 1 + allowed + 1 // 0 -> nonzero: always a regression
		} else {
			ratio = 1
		}
		fmt.Fprintf(w, "benchjson: %-44s %12.0f -> %12.0f %s (%+.1f%%)\n",
			key, baseV, curV, unit, 100*(ratio-1))
		if ratio > 1+allowed {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f -> %.0f %s (+%.1f%% > %.0f%% allowed)",
					key, baseV, curV, unit, 100*(ratio-1), 100*allowed))
		}
	}
	for _, key := range headlines {
		b, inBase := base.Benchmarks[key]
		c, inCur := cur.Benchmarks[key]
		switch {
		case !inBase:
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", key))
			continue
		case !inCur:
			failures = append(failures, fmt.Sprintf("%s: missing from current run", key))
			continue
		case b.NsPerOp <= 0:
			failures = append(failures, fmt.Sprintf("%s: baseline ns/op %v unusable", key, b.NsPerOp))
			continue
		}
		gate(key, "ns/op", b.NsPerOp, c.NsPerOp, threshold)
		if b.BytesPerOp != nil {
			if c.BytesPerOp == nil {
				failures = append(failures, fmt.Sprintf("%s: B/op missing from current run (baseline has it; run with -benchmem)", key))
			} else {
				gate(key, "B/op", *b.BytesPerOp, *c.BytesPerOp, memThreshold)
			}
		}
		if b.AllocsPerOp != nil {
			if c.AllocsPerOp == nil {
				failures = append(failures, fmt.Sprintf("%s: allocs/op missing from current run (baseline has it; run with -benchmem)", key))
			} else {
				gate(key, "allocs/op", *b.AllocsPerOp, *c.AllocsPerOp, memThreshold)
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// Parse consumes a `go test -bench` log and extracts every benchmark line.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Context:    map[string]string{},
		Benchmarks: map[string]Entry{},
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "),
			strings.HasPrefix(line, "goarch: "),
			strings.HasPrefix(line, "cpu: "):
			k, v, _ := strings.Cut(line, ": ")
			rep.Context[k] = strings.TrimSpace(v)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		name, e, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		rep.Benchmarks[key] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	Benchmark<Name>[-P]  <iters>  <value> <unit>  [<value> <unit>]...
func parseBenchLine(line string) (string, Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Entry{}, false
	}
	name := trimProcSuffix(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	e := Entry{Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
			seenNs = true
		case "B/op":
			e.BytesPerOp = &v
		case "allocs/op":
			e.AllocsPerOp = &v
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	if !seenNs {
		return "", Entry{}, false
	}
	return name, e, true
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> the testing package
// appends, so keys stay stable across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
