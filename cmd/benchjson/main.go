// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark trajectories can be checked in and diffed
// across PRs (see BENCH_PR3.json and the README's "Benchmark tracking"
// section).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_PR3.json
//	benchjson bench.txt            # read a saved log instead of stdin
//
// The parser understands the standard testing package line format,
// including -benchmem columns and custom ReportMetric units:
//
//	BenchmarkApplyBeacon-4   13810   86637 ns/op   0 B/op   0 allocs/op
//
// Names are keyed as "<package>.<benchmark>" (the -<GOMAXPROCS> suffix is
// stripped) and emitted in sorted order, so regenerating the file on the
// same machine yields a minimal diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry records one benchmark's measurements.
type Entry struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any additional unit columns (custom b.ReportMetric
	// units, MB/s, ...), keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the checked-in document shape.
type Report struct {
	// Context echoes the goos/goarch/cpu header lines of the log, which
	// anchor what hardware the numbers mean anything on.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks map[string]Entry  `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	rep, err := Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		return os.WriteFile(*out, buf, 0o644)
	}
	_, err = stdout.Write(buf)
	return err
}

// Parse consumes a `go test -bench` log and extracts every benchmark line.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Context:    map[string]string{},
		Benchmarks: map[string]Entry{},
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "),
			strings.HasPrefix(line, "goarch: "),
			strings.HasPrefix(line, "cpu: "):
			k, v, _ := strings.Cut(line, ": ")
			rep.Context[k] = strings.TrimSpace(v)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		name, e, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		rep.Benchmarks[key] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	Benchmark<Name>[-P]  <iters>  <value> <unit>  [<value> <unit>]...
func parseBenchLine(line string) (string, Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Entry{}, false
	}
	name := trimProcSuffix(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	e := Entry{Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
			seenNs = true
		case "B/op":
			e.BytesPerOp = &v
		case "allocs/op":
			e.AllocsPerOp = &v
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	if !seenNs {
		return "", Entry{}, false
	}
	return name, e, true
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> the testing package
// appends, so keys stay stable across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
