package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: cocoa/internal/bayes
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkApplyBeacon-4           	   13810	     86637 ns/op	       0 B/op	       0 allocs/op
BenchmarkApplyBeaconTabulated-4  	   58126	     20521 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	cocoa/internal/bayes	3.337s
pkg: cocoa/internal/sim
BenchmarkEventLoop-4             	 1000000	      1056 ns/op	  12.50 events/op	       0 B/op	       0 allocs/op
--- BENCH: some stray line
BenchmarkBroken no fields
ok  	cocoa/internal/sim	1.2s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Benchmarks); got != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", got, rep.Benchmarks)
	}
	e, ok := rep.Benchmarks["cocoa/internal/bayes.BenchmarkApplyBeacon"]
	if !ok {
		t.Fatalf("missing pkg-qualified, suffix-stripped key; have %+v", rep.Benchmarks)
	}
	if e.NsPerOp != 86637 || e.Iterations != 13810 {
		t.Errorf("ApplyBeacon entry = %+v", e)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 0 || e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Errorf("benchmem columns not parsed: %+v", e)
	}
	ev, ok := rep.Benchmarks["cocoa/internal/sim.BenchmarkEventLoop"]
	if !ok {
		t.Fatal("missing sim benchmark (pkg switch not tracked)")
	}
	if ev.Metrics["events/op"] != 12.5 {
		t.Errorf("custom metric = %+v", ev.Metrics)
	}
	if rep.Context["cpu"] == "" || rep.Context["goos"] != "linux" {
		t.Errorf("context not captured: %+v", rep.Context)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-4":        "BenchmarkX",
		"BenchmarkX-128":      "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkFig4-Odo-8": "BenchmarkFig4-Odo",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-o", out}, strings.NewReader(sampleLog), os.Stdout); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("round-trip lost benchmarks: %d", len(rep.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &buf); err == nil {
		t.Fatal("empty input accepted")
	}
}
