package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, benchmarks map[string]Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	b, err := json.Marshal(Report{Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// benchLog fabricates a `go test -bench` log with one headline result.
func benchLog(pkg, name string, nsPerOp float64) string {
	return fmt.Sprintf("pkg: %s\n%s-8   100   %.1f ns/op\n", pkg, name, nsPerOp)
}

func TestCompareHeadlines(t *testing.T) {
	const key = "cocoa.BenchmarkReplicationSerial"
	cases := []struct {
		name    string
		baseNs  float64
		curNs   float64
		wantErr string
	}{
		{"unchanged", 1000, 1000, ""},
		{"improved", 1000, 500, ""},
		{"within threshold", 1000, 1240, ""},
		{"at threshold boundary", 1000, 1250, ""},
		{"regressed", 1000, 1300, "regression"},
		{"order of magnitude", 1000, 10000, "regression"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := writeBaseline(t, map[string]Entry{key: {Iterations: 100, NsPerOp: tc.baseNs}})
			log := benchLog("cocoa", "BenchmarkReplicationSerial", tc.curNs)
			var out strings.Builder
			err := run([]string{"-compare", base, "-headline", key},
				strings.NewReader(log), &out)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, out.String())
				}
				if !strings.Contains(out.String(), key) {
					t.Errorf("comparison table missing %s:\n%s", key, out.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompareMissingBenchmarks(t *testing.T) {
	const key = "cocoa.BenchmarkReplicationSerial"
	log := benchLog("cocoa", "BenchmarkReplicationSerial", 1000)

	// Headline absent from the baseline: fail loudly, never skip.
	base := writeBaseline(t, map[string]Entry{"cocoa.Other": {Iterations: 1, NsPerOp: 1}})
	var out strings.Builder
	err := run([]string{"-compare", base, "-headline", key}, strings.NewReader(log), &out)
	if err == nil || !strings.Contains(err.Error(), "missing from baseline") {
		t.Errorf("missing baseline entry: err = %v", err)
	}

	// Headline absent from the current run.
	base = writeBaseline(t, map[string]Entry{key: {Iterations: 1, NsPerOp: 1000}})
	err = run([]string{"-compare", base, "-headline", "cocoa.BenchmarkGhost"},
		strings.NewReader(log), &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing current entry: err = %v", err)
	}

	// Unusable baseline value.
	base = writeBaseline(t, map[string]Entry{key: {Iterations: 1, NsPerOp: 0}})
	err = run([]string{"-compare", base, "-headline", key}, strings.NewReader(log), &out)
	if err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Errorf("zero baseline: err = %v", err)
	}

	// Empty headline list.
	err = run([]string{"-compare", base, "-headline", " , "}, strings.NewReader(log), &out)
	if err == nil || !strings.Contains(err.Error(), "at least one") {
		t.Errorf("empty headline list: err = %v", err)
	}

	// Unreadable baseline file.
	err = run([]string{"-compare", filepath.Join(t.TempDir(), "absent.json")},
		strings.NewReader(log), &out)
	if err == nil {
		t.Error("missing baseline file accepted")
	}
}

func TestCompareCustomThreshold(t *testing.T) {
	const key = "cocoa.BenchmarkReplicationSerial"
	base := writeBaseline(t, map[string]Entry{key: {Iterations: 100, NsPerOp: 1000}})
	log := benchLog("cocoa", "BenchmarkReplicationSerial", 1100)
	var out strings.Builder
	if err := run([]string{"-compare", base, "-headline", key, "-threshold", "0.25"},
		strings.NewReader(log), &out); err != nil {
		t.Errorf("+10%% failed the default-style gate: %v", err)
	}
	if err := run([]string{"-compare", base, "-headline", key, "-threshold", "0.05"},
		strings.NewReader(log), &out); err == nil {
		t.Error("+10% passed a 5% gate")
	}
}

// The default headline set must reference benchmarks that exist in the
// checked-in baseline, or make check's gate would be vacuous. The memory
// gate additionally needs the baseline's -benchmem columns to be present.
func TestDefaultHeadlinesExistInCheckedInBaseline(t *testing.T) {
	rep, err := readReport("../../BENCH_PR7.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range defaultHeadlines {
		e, ok := rep.Benchmarks[key]
		if !ok {
			t.Errorf("default headline %s not in BENCH_PR7.json", key)
			continue
		}
		if e.BytesPerOp == nil || e.AllocsPerOp == nil {
			t.Errorf("default headline %s lacks -benchmem columns in BENCH_PR7.json", key)
		}
	}
}

// memLog fabricates a log line with the -benchmem columns.
func memLog(pkg, name string, nsPerOp, bytesPerOp, allocsPerOp float64) string {
	return fmt.Sprintf("pkg: %s\n%s-8   100   %.1f ns/op   %.0f B/op   %.0f allocs/op\n",
		pkg, name, nsPerOp, bytesPerOp, allocsPerOp)
}

func memEntry(ns, bytes, allocs float64) Entry {
	return Entry{Iterations: 100, NsPerOp: ns, BytesPerOp: &bytes, AllocsPerOp: &allocs}
}

// The memory gate: B/op and allocs/op regress independently of ns/op,
// against their own -mem-threshold.
func TestCompareMemGate(t *testing.T) {
	const key = "cocoa.BenchmarkReplicationSerial"
	cases := []struct {
		name               string
		base               Entry
		curBytes, curAlloc float64
		wantErr            string
	}{
		{"unchanged", memEntry(1000, 4096, 32), 4096, 32, ""},
		{"improved", memEntry(1000, 4096, 32), 1024, 8, ""},
		{"bytes within threshold", memEntry(1000, 4096, 32), 5000, 32, ""},
		{"bytes at boundary", memEntry(1000, 4096, 32), 5120, 32, ""},
		{"bytes regressed", memEntry(1000, 4096, 32), 6000, 32, "B/op"},
		{"allocs regressed", memEntry(1000, 4096, 32), 4096, 41, "allocs/op"},
		{"zero-alloc baseline stays clean", memEntry(1000, 0, 0), 0, 0, ""},
		{"zero-alloc baseline gains allocs", memEntry(1000, 0, 0), 16, 1, "allocs/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := writeBaseline(t, map[string]Entry{key: tc.base})
			log := memLog("cocoa", "BenchmarkReplicationSerial", 1000, tc.curBytes, tc.curAlloc)
			var out strings.Builder
			err := run([]string{"-compare", base, "-headline", key},
				strings.NewReader(log), &out)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, out.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

// -mem-threshold is independent of -threshold: a loose ns/op gate must not
// loosen the memory gate, and vice versa.
func TestCompareMemThresholdIndependent(t *testing.T) {
	const key = "cocoa.BenchmarkReplicationSerial"
	base := writeBaseline(t, map[string]Entry{key: memEntry(1000, 4096, 32)})
	// +10% bytes: inside the default 25% but outside a 5% memory gate,
	// while ns/op is unchanged.
	log := memLog("cocoa", "BenchmarkReplicationSerial", 1000, 4506, 32)
	var out strings.Builder
	if err := run([]string{"-compare", base, "-headline", key},
		strings.NewReader(log), &out); err != nil {
		t.Errorf("+10%% bytes failed the default gate: %v", err)
	}
	err := run([]string{"-compare", base, "-headline", key, "-mem-threshold", "0.05"},
		strings.NewReader(log), &out)
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Errorf("+10%% bytes passed a 5%% memory gate: %v", err)
	}
	// Tightening -threshold alone must not fail the unchanged ns/op.
	if err := run([]string{"-compare", base, "-headline", key, "-threshold", "0.01"},
		strings.NewReader(log), &out); err != nil {
		t.Errorf("tight ns gate tripped on memory movement: %v", err)
	}
}

// A baseline without -benchmem columns cannot gate memory (nothing to
// compare against); a baseline *with* them makes the columns mandatory in
// the current run — dropping -benchmem must not silently disable the gate.
func TestCompareMemColumnsPresence(t *testing.T) {
	const key = "cocoa.BenchmarkReplicationSerial"
	var out strings.Builder

	base := writeBaseline(t, map[string]Entry{key: {Iterations: 100, NsPerOp: 1000}})
	log := memLog("cocoa", "BenchmarkReplicationSerial", 1000, 1<<30, 1<<20)
	if err := run([]string{"-compare", base, "-headline", key},
		strings.NewReader(log), &out); err != nil {
		t.Errorf("mem-free baseline still gated memory: %v", err)
	}

	base = writeBaseline(t, map[string]Entry{key: memEntry(1000, 4096, 32)})
	log = benchLog("cocoa", "BenchmarkReplicationSerial", 1000)
	err := run([]string{"-compare", base, "-headline", key}, strings.NewReader(log), &out)
	if err == nil || !strings.Contains(err.Error(), "missing from current run") {
		t.Errorf("dropped -benchmem columns passed: %v", err)
	}
}
