package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummaryTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "60000"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rssi(dBm)") {
		t.Errorf("missing header:\n%.120s", out)
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Error("summary lacks both Gaussian and non-Gaussian rows")
	}
}

func TestSummaryCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "60000", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "rssi_dbm,gaussian,mean_m,std_m,nominal_m\n") {
		t.Errorf("CSV header missing:\n%.80s", buf.String())
	}
}

func TestCurveCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "60000", "-rssi", "-52", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "distance_m,density\n") {
		t.Errorf("curve header missing:\n%.80s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 100 {
		t.Errorf("curve too short: %d lines", lines)
	}
}

func TestCurveASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "60000", "-rssi", "-52"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gaussian=true") || !strings.Contains(out, "#") {
		t.Errorf("ASCII profile malformed:\n%.200s", out)
	}
}

func TestUncalibratedRSSIRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "60000", "-rssi", "-20"}, &buf); err == nil {
		t.Fatal("accepted uncalibrated RSSI")
	}
}

func TestBadFlagRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("accepted unknown flag")
	}
}
