// Command cocoacal runs the offline calibration phase in isolation and
// dumps the PDF Table for inspection or plotting — the data behind the
// paper's Figure 1.
//
// Examples:
//
//	cocoacal                      # per-RSSI summary table
//	cocoacal -rssi -52 -csv       # one PDF's full curve as CSV
//	cocoacal -samples 1000000     # heavier calibration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cocoa/internal/caltable"
	"cocoa/internal/radio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cocoacal:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cocoacal", flag.ContinueOnError)
	var (
		samples = fs.Int("samples", 400000, "Monte-Carlo soundings")
		seed    = fs.Int64("seed", 1, "random seed")
		rssi    = fs.Float64("rssi", 0, "dump one RSSI's PDF curve (0 = summary table)")
		csv     = fs.Bool("csv", false, "CSV output")
		step    = fs.Float64("step", 0.5, "curve sampling step in meters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model := radio.DefaultModel()
	opts := caltable.DefaultOptions()
	opts.Samples = *samples
	table, err := caltable.Shared(model, opts, *seed)
	if err != nil {
		return err
	}

	if *rssi != 0 {
		return dumpCurve(w, table, *rssi, *step, *csv)
	}
	return dumpSummary(w, table, model, *csv)
}

// dumpCurve prints one PDF's density over distance.
func dumpCurve(w io.Writer, table *caltable.Table, rssi, step float64, csv bool) error {
	pdf, ok := table.Lookup(rssi)
	if !ok {
		return fmt.Errorf("RSSI %.0f dBm not calibrated", rssi)
	}
	if csv {
		fmt.Fprintln(w, "distance_m,density")
		for d := 0.0; d <= table.MaxDist(); d += step {
			fmt.Fprintf(w, "%.2f,%.8f\n", d, pdf.Density(d))
		}
		return nil
	}
	fmt.Fprintf(w, "RSSI %.0f dBm: gaussian=%v mean=%.2f m std=%.2f m\n",
		rssi, pdf.IsGaussian(), pdf.Mean(), pdf.Std())
	// Coarse ASCII profile.
	var peak float64
	for d := 0.0; d <= table.MaxDist(); d += step {
		if v := pdf.Density(d); v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return fmt.Errorf("degenerate PDF at %.0f dBm", rssi)
	}
	for d := 0.0; d <= table.MaxDist(); d += 5 {
		bar := int(40 * pdf.Density(d) / peak)
		fmt.Fprintf(w, "%6.1f m |", d)
		for i := 0; i < bar; i++ {
			fmt.Fprint(w, "#")
		}
		fmt.Fprintln(w)
	}
	return nil
}

// dumpSummary prints one row per calibrated RSSI value.
func dumpSummary(w io.Writer, table *caltable.Table, model radio.Model, csv bool) error {
	lo, hi, ok := table.CalibratedRange()
	if !ok {
		return fmt.Errorf("empty calibration table")
	}
	if csv {
		fmt.Fprintln(w, "rssi_dbm,gaussian,mean_m,std_m,nominal_m")
	} else {
		fmt.Fprintf(w, "%10s %9s %9s %8s %10s\n", "rssi(dBm)", "gaussian", "mean(m)", "std(m)", "nominal(m)")
	}
	for r := hi; r >= lo; r-- {
		pdf, ok := table.Lookup(float64(r))
		if !ok {
			continue
		}
		nominal := model.DistanceForRSSI(float64(r))
		if csv {
			fmt.Fprintf(w, "%d,%v,%.2f,%.2f,%.2f\n",
				r, pdf.IsGaussian(), pdf.Mean(), pdf.Std(), nominal)
		} else {
			fmt.Fprintf(w, "%10d %9v %9.2f %8.2f %10.2f\n",
				r, pdf.IsGaussian(), pdf.Mean(), pdf.Std(), nominal)
		}
	}
	return nil
}
