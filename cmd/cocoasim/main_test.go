package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"cocoa"
)

// fastArgs shrinks a run so the CLI tests stay quick.
func fastArgs(extra ...string) []string {
	base := []string{
		"-robots", "10", "-equipped", "5", "-duration", "120", "-T", "30",
		"-grid", "4",
	}
	return append(base, extra...)
}

func TestRunCoCoAMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-mode", "cocoa"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mean error over time", "fix rate", "energy", "MAC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOdometryMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-mode", "odometry"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "fix rate") {
		t.Error("odometry mode printed RF statistics")
	}
	if !strings.Contains(out, "mode=odometry-only") {
		t.Errorf("output missing mode line:\n%s", out)
	}
}

func TestRunRFMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-mode", "rf"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mode=rf-only") {
		t.Error("output missing rf-only mode line")
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-csv"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,avg_error_m\n") {
		t.Errorf("CSV header missing:\n%.80s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 100 {
		t.Errorf("CSV too short: %d lines", lines)
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-mode", "teleport"), &buf); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-equipped", "999"), &buf); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-json"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"mode": "cocoa"`, `"meanErrorM"`, `"energySavings"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

func TestRunSeriesFiles(t *testing.T) {
	dir := t.TempDir()
	series := dir + "/series.csv"
	robots := dir + "/robots.csv"
	var buf bytes.Buffer
	if err := run(fastArgs("-series", series, "-robots-out", robots), &buf); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{series, robots} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "time_s,") {
			t.Errorf("%s missing CSV header: %.40s", path, data)
		}
	}
}

func TestRunSeriesFileError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-series", "/no/such/dir/x.csv"), &buf); err == nil {
		t.Fatal("unwritable series path accepted")
	}
}

func TestRunUncoordinated(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-no-coordination"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.0x savings") {
		t.Errorf("uncoordinated run should report 1.0x savings:\n%s", buf.String())
	}
}

func TestRunEventsFile(t *testing.T) {
	dir := t.TempDir()
	events := dir + "/events.jsonl"
	var buf bytes.Buffer
	if err := run(fastArgs("-events", events), &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"fix"`) {
		t.Errorf("event log lacks fix events: %.120s", data)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines < 10 {
		t.Errorf("only %d events logged", lines)
	}
}

func TestRunLocalizerBackends(t *testing.T) {
	for _, backend := range []string{"particle", "ekf"} {
		var buf bytes.Buffer
		if err := run(fastArgs("-localizer", backend), &buf); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
	}
	var buf bytes.Buffer
	if err := run(fastArgs("-localizer", "psychic"), &buf); err == nil {
		t.Fatal("unknown localizer accepted")
	}
}

func TestRunRoughTerrain(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-mode", "odometry", "-terrain", "3"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean error over time") {
		t.Error("summary missing")
	}
}

func TestRunPrintConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-print-config", "-T", "50", "-robots", "30", "-equipped", "15", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	var cfg cocoa.Config
	if err := json.Unmarshal(buf.Bytes(), &cfg); err != nil {
		t.Fatalf("output is not a Config: %v", err)
	}
	if cfg.BeaconPeriodS != 50 || cfg.NumRobots != 30 || cfg.NumEquipped != 15 || cfg.Seed != 7 {
		t.Errorf("flags not reflected: T=%v robots=%d equipped=%d seed=%d",
			cfg.BeaconPeriodS, cfg.NumRobots, cfg.NumEquipped, cfg.Seed)
	}
	// The emitted config must be directly submittable: it validates as-is.
	if err := cfg.Validate(); err != nil {
		t.Errorf("printed config does not validate: %v", err)
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	var full bytes.Buffer
	if err := run(fastArgs("-mode", "cocoa",
		"-checkpoint", dir, "-checkpoint-every", "30", "-json"), &full); err != nil {
		t.Fatal(err)
	}
	ckpt := dir + "/latest.ckpt"
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpointing run left no snapshot: %v", err)
	}
	var resumed bytes.Buffer
	if err := run([]string{"-resume", ckpt, "-json"}, &resumed); err != nil {
		t.Fatal(err)
	}
	if full.String() != resumed.String() {
		t.Fatalf("resumed summary differs from the full run's:\n%s\n%s",
			full.String(), resumed.String())
	}
}

func TestRunResumeMissingSnapshot(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-resume", t.TempDir() + "/nope.ckpt"}, &buf)
	if err == nil {
		t.Fatal("resume from a missing snapshot succeeded")
	}
}

func TestRunResumeCorruptSnapshot(t *testing.T) {
	path := t.TempDir() + "/bad.ckpt"
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-resume", path}, &buf)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("corrupt snapshot: err=%v, want a checkpoint format error", err)
	}
}

func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/run.trace.json"
	var buf bytes.Buffer
	if err := run(fastArgs("-trace-out", path, "-json"), &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := cocoa.ReadTrace(f)
	if err != nil {
		t.Fatalf("written trace fails the strict decoder: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
	}
	for _, want := range []string{"run", "sampling-window", "mac-frame", "belief-update"} {
		if !names[want] {
			t.Errorf("trace missing %q span", want)
		}
	}
}

func TestRunTraceOutUnwritable(t *testing.T) {
	var buf bytes.Buffer
	err := run(fastArgs("-trace-out", t.TempDir()+"/no/such/dir/t.json", "-json"), &buf)
	if err == nil {
		t.Fatal("unwritable -trace-out accepted")
	}
}

func TestRunRejectsBadLogFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-log-format", "yaml"), &buf); err == nil {
		t.Error("unknown -log-format accepted")
	}
	if err := run(fastArgs("-log-level", "loud"), &buf); err == nil {
		t.Error("unknown -log-level accepted")
	}
}
