// Command cocoasim runs a single CoCoA deployment and prints the
// localization-error time series plus a run summary.
//
// Examples:
//
//	cocoasim -mode cocoa -T 100 -duration 1800
//	cocoasim -mode odometry -vmax 0.5 -csv
//	cocoasim -mode rf -T 50 -equipped 15 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cocoa"
	"cocoa/internal/eventlog"
	"cocoa/internal/obs"
	"cocoa/internal/trace"
)

// writeFile creates path and streams content through fn.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cocoasim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cocoasim", flag.ContinueOnError)
	var (
		mode        = fs.String("mode", "cocoa", "localization mode: odometry | rf | cocoa")
		robots      = fs.Int("robots", 50, "team size")
		equipped    = fs.Int("equipped", 25, "robots with localization devices")
		vmax        = fs.Float64("vmax", 2.0, "maximum robot speed (m/s)")
		period      = fs.Float64("T", 100, "beacon period T (s)")
		window      = fs.Float64("t", 3, "transmit period t (s)")
		k           = fs.Int("k", 3, "beacons per window")
		duration    = fs.Float64("duration", 1800, "simulated time (s)")
		seed        = fs.Int64("seed", 1, "random seed")
		gridCell    = fs.Float64("grid", 2, "Bayesian grid cell size (m)")
		localizer   = fs.String("localizer", "grid", "RF estimation backend: grid | particle | ekf")
		terrain     = fs.Float64("terrain", 0, "terrain roughness amplitude (0 = smooth)")
		uncoord     = fs.Bool("no-coordination", false, "radios idle instead of sleeping")
		secondary   = fs.Bool("secondary", false, "localized unequipped robots also beacon")
		csv         = fs.Bool("csv", false, "emit the full per-second series as CSV")
		jsonOut     = fs.Bool("json", false, "emit the run summary as JSON instead of text")
		seriesFile  = fs.String("series", "", "also write the error series CSV to this file")
		eventsFile  = fs.String("events", "", "also write a JSONL event log to this file")
		robotsFile  = fs.String("robots-out", "", "also write the per-robot error matrix CSV to this file")
		sampleEvery = fs.Int("every", 60, "series print cadence in samples (non-CSV)")
		printConfig = fs.Bool("print-config", false, "print the assembled Config as JSON and exit (pipe into cocoad)")
		ckptDir     = fs.String("checkpoint", "", "persist a resumable snapshot (latest.ckpt) into this directory during the run")
		ckptEvery   = fs.Int("checkpoint-every", 0, "snapshot cadence in sampling ticks (0 = default cadence)")
		resumePath  = fs.String("resume", "", "resume from this snapshot file instead of starting a new run (other config flags are ignored)")
		traceOut    = fs.String("trace-out", "", "record a span timeline and write it as Chrome trace-event JSON to this file (load in Perfetto)")
	)
	logOpts := obs.AddLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logOpts.NewLogger(os.Stderr)
	if err != nil {
		return err
	}

	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = *robots
	cfg.NumEquipped = *equipped
	cfg.VMax = *vmax
	cfg.BeaconPeriodS = *period
	cfg.TransmitPeriodS = *window
	cfg.BeaconsPerWindow = *k
	cfg.DurationS = *duration
	cfg.Seed = *seed
	cfg.GridCellM = *gridCell
	cfg.Coordinated = !*uncoord
	cfg.SecondaryBeacons = *secondary
	cfg.TerrainAmplitude = *terrain

	switch *localizer {
	case "grid":
		cfg.Localizer = cocoa.LocalizerGrid
	case "particle":
		cfg.Localizer = cocoa.LocalizerParticle
	case "ekf":
		cfg.Localizer = cocoa.LocalizerEKF
	default:
		return fmt.Errorf("unknown localizer %q (want grid | particle | ekf)", *localizer)
	}

	switch *mode {
	case "odometry":
		cfg.Mode = cocoa.ModeOdometryOnly
	case "rf":
		cfg.Mode = cocoa.ModeRFOnly
	case "cocoa":
		cfg.Mode = cocoa.ModeCombined
	default:
		return fmt.Errorf("unknown mode %q (want odometry | rf | cocoa)", *mode)
	}

	if *ckptDir != "" {
		cfg.Checkpoint = cocoa.CheckpointSpec{EveryTicks: *ckptEvery, Dir: *ckptDir}
	}

	if *printConfig {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cfg)
	}

	var tracer *cocoa.Trace
	if *traceOut != "" {
		tracer = cocoa.NewTrace()
		cfg.Trace = tracer
	}

	var team *cocoa.Team
	if *resumePath != "" {
		// Resume mode: the snapshot's embedded config replaces the flag
		// assembly above wholesale; only the operational checkpoint flags
		// carry over (so a resumed run can keep snapshotting).
		snap, rerr := cocoa.ReadSnapshot(*resumePath)
		if rerr != nil {
			return rerr
		}
		cfg, err = cocoa.ConfigFromSnapshot(snap)
		if err != nil {
			return err
		}
		if *ckptDir != "" {
			cfg.Checkpoint = cocoa.CheckpointSpec{EveryTicks: *ckptEvery, Dir: *ckptDir}
		}
		if tracer != nil {
			cfg.Trace = tracer
		}
		logger.Info("resuming from snapshot", "path", *resumePath,
			"tick", snap.TickIndex, "sim_s", snap.SimNowS, "label", snap.Label)
		team, err = cocoa.ResumeTeam(cfg, snap)
	} else {
		team, err = cocoa.NewTeam(cfg)
	}
	if err != nil {
		return err
	}
	var evWriter *eventlog.Writer
	var evFile *os.File
	if *eventsFile != "" {
		evFile, err = os.Create(*eventsFile)
		if err != nil {
			return err
		}
		defer evFile.Close()
		evWriter = eventlog.NewWriter(evFile)
		team.Observe(evWriter.Observer())
	}
	res, err := team.Run()
	if err != nil {
		return err
	}
	if evWriter != nil {
		if err := evWriter.Close(); err != nil {
			return err
		}
	}
	if tracer != nil {
		if err := writeFile(*traceOut, tracer.WriteJSON); err != nil {
			return err
		}
		logger.Info("trace written", "path", *traceOut, "events", tracer.Len())
	}

	if *seriesFile != "" {
		if err := writeFile(*seriesFile, func(f io.Writer) error {
			return trace.WriteSeriesCSV(f, res)
		}); err != nil {
			return err
		}
	}
	if *robotsFile != "" {
		if err := writeFile(*robotsFile, func(f io.Writer) error {
			return trace.WritePerRobotCSV(f, res)
		}); err != nil {
			return err
		}
	}
	if *jsonOut {
		return trace.WriteSummaryJSON(w, res)
	}

	if *csv {
		fmt.Fprintln(w, "time_s,avg_error_m")
		for i := range res.Times {
			fmt.Fprintf(w, "%.0f,%.4f\n", res.Times[i], res.AvgError[i])
		}
	} else {
		fmt.Fprintf(w, "time(s)  avg error (m)\n")
		for i := 0; i < len(res.Times); i += *sampleEvery {
			fmt.Fprintf(w, "%7.0f  %8.2f\n", res.Times[i], res.AvgError[i])
		}
	}

	fmt.Fprintf(w, "\nmode=%s robots=%d equipped=%d vmax=%.1f T=%.0fs t=%.0fs k=%d seed=%d\n",
		cfg.Mode, cfg.NumRobots, cfg.NumEquipped, cfg.VMax,
		cfg.BeaconPeriodS, cfg.TransmitPeriodS, cfg.BeaconsPerWindow, cfg.Seed)
	fmt.Fprintf(w, "mean error over time: %.2f m (max avg %.2f m)\n", res.MeanError(), res.MaxAvgError())
	if cfg.Mode != cocoa.ModeOdometryOnly {
		fmt.Fprintf(w, "fix rate: %.1f%%  beacons applied: %d  SYNCs delivered: %d\n",
			100*res.FixRate(), res.BeaconsApplied, res.SyncsReceived)
		fmt.Fprintf(w, "energy: %.0f J coordinated, %.0f J without coordination (%.1fx savings)\n",
			res.TotalEnergyJ, res.NoSleepEnergyJ, res.EnergySavings())
		fmt.Fprintf(w, "MAC: %d frames sent, %d delivered, %d collided, %d missed asleep\n",
			res.MAC.Sent, res.MAC.Delivered, res.MAC.Collided, res.MAC.MissedAsleep)
	}
	return nil
}
