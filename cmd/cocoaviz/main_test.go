package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func fastArgs(extra ...string) []string {
	base := []string{"-robots", "8", "-equipped", "4", "-duration", "90", "-T", "30"}
	return append(base, extra...)
}

func TestDeploymentToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Errorf("not SVG: %.60s", out)
	}
	if !strings.Contains(out, "mean err") {
		t.Error("deployment caption missing")
	}
}

func TestPathToFile(t *testing.T) {
	out := t.TempDir() + "/drift.svg"
	var buf bytes.Buffer
	if err := run([]string{"-path", "-duration", "120", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "final gap") {
		t.Error("path caption missing")
	}
	if buf.Len() != 0 {
		t.Error("wrote to stdout despite -o")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("-equipped", "99"), &buf); err == nil {
		t.Fatal("invalid config accepted")
	}
}
