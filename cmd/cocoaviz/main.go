// Command cocoaviz runs a CoCoA deployment and renders SVG snapshots: the
// final deployment state (true vs believed positions) and a Figure 5-style
// odometry-drift path comparison.
//
// Examples:
//
//	cocoaviz -o deployment.svg
//	cocoaviz -path -o drift.svg -duration 600
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cocoa"
	"cocoa/internal/geom"
	"cocoa/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cocoaviz:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cocoaviz", flag.ContinueOnError)
	var (
		out      = fs.String("o", "", "output SVG path (default: stdout)")
		path     = fs.Bool("path", false, "render the odometry path comparison instead of the deployment")
		robots   = fs.Int("robots", 50, "team size")
		equipped = fs.Int("equipped", 25, "robots with localization devices")
		period   = fs.Float64("T", 100, "beacon period (s)")
		duration = fs.Float64("duration", 600, "simulated time (s)")
		seed     = fs.Int64("seed", 1, "random seed")
		pixels   = fs.Float64("px", 700, "canvas width in pixels")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var svg string
	if *path {
		fig5, err := cocoa.RunFig5(cocoa.ExperimentOptions{Seed: *seed, DurationS: *duration})
		if err != nil {
			return err
		}
		svg, err = viz.PathSVG(fig5.True, fig5.Estimated, geom.Square(200), *pixels)
		if err != nil {
			return err
		}
	} else {
		cfg := cocoa.DefaultConfig()
		cfg.NumRobots = *robots
		cfg.NumEquipped = *equipped
		cfg.BeaconPeriodS = *period
		cfg.DurationS = *duration
		cfg.Seed = *seed
		res, err := cocoa.Run(cfg)
		if err != nil {
			return err
		}
		svg, err = viz.DeploymentSVG(res, *pixels)
		if err != nil {
			return err
		}
	}

	if *out == "" {
		_, err := io.WriteString(w, svg+"\n")
		return err
	}
	return os.WriteFile(*out, []byte(svg), 0o644)
}
