// Benchmarks regenerating each figure of the paper's evaluation, plus the
// ablation studies from DESIGN.md. Each benchmark runs the scenario behind
// the corresponding figure at a reduced-but-structurally-identical scale
// (go test -bench is not the place for 30-minute 50-robot runs; use
// cmd/cocoaexp for the full-scale suite) and reports the headline metric
// via b.ReportMetric so the shape of the paper's result is visible in the
// bench output.
package cocoa_test

import (
	"testing"

	"cocoa"
)

// benchOpts is the reduced scale every figure benchmark shares.
func benchOpts(seed int64) cocoa.ExperimentOptions {
	return cocoa.ExperimentOptions{
		Seed:               seed,
		DurationS:          240,
		NumRobots:          16,
		CalibrationSamples: 80000,
		GridCellM:          4,
	}
}

func BenchmarkFig1PDFTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cocoa.RunFig1(cocoa.ExperimentOptions{Seed: 1, CalibrationSamples: 120000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Strong.MeanDist, "strong-mean-m")
			b.ReportMetric(res.Weak.MeanDist, "weak-mean-m")
		}
	}
}

func BenchmarkFig4OdometryOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := cocoa.RunFig4(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(s.Values[len(s.Values)-1], "final-err-m-"+s.Label)
			}
		}
	}
}

func BenchmarkFig5OdometryPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cocoa.RunFig5(cocoa.ExperimentOptions{Seed: 1, DurationS: 600})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.FinalGapM, "final-gap-m")
		}
	}
}

func BenchmarkFig6RFOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := cocoa.RunFig6(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(cocoa.SteadyStateMean(s, 60), "steady-err-m-"+s.Label)
			}
		}
	}
}

func BenchmarkFig7Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := cocoa.RunFig7(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				if r.VMax == 2.0 {
					b.ReportMetric(cocoa.SteadyStateMean(r.CoCoA, 110), "cocoa-err-m")
					b.ReportMetric(cocoa.SteadyStateMean(r.RFOnly, 110), "rf-err-m")
					b.ReportMetric(cocoa.SteadyStateMean(r.Odometry, 110), "odo-err-m")
				}
			}
		}
	}
}

func BenchmarkFig8CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		snaps, err := cocoa.RunFig8(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(snaps) == 3 {
			b.ReportMetric(snaps[1].P90, "p90-after-window-m")
		}
	}
}

func BenchmarkFig9BeaconPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunFig9(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MeanErrorM, "err-m-T"+itoa(int(r.PeriodS)))
			}
		}
	}
}

func BenchmarkFig9Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunFig9(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.SavingsRatio, "savings-x-T"+itoa(int(r.PeriodS)))
			}
		}
	}
}

func BenchmarkFig10Devices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunFig10(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MeanErrorM, "err-m-n"+itoa(r.Equipped))
			}
		}
	}
}

func BenchmarkExtensionSecondaryBeacons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunExtensionSecondary(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].BaselineMeanM, "baseline-err-m")
			b.ReportMetric(rows[0].SecondaryMeanM, "secondary-err-m")
		}
	}
}

func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunAblationPruning(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(float64(rows[0].DataSent), "mrmm-data-tx")
			b.ReportMetric(float64(rows[1].DataSent), "odmrp-data-tx")
		}
	}
}

func BenchmarkAblationBeaconRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunAblationK(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.FixRate, "fixrate-pct-k"+itoa(r.K))
			}
		}
	}
}

func BenchmarkAblationGridResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunAblationGrid(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MeanErrorM, "err-m-cell"+itoa(int(r.CellM)))
			}
		}
	}
}

func BenchmarkAblationLocalizerBackend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunAblationLocalizer(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 3 {
			b.ReportMetric(rows[0].MeanErrorM, "grid-err-m")
			b.ReportMetric(rows[1].MeanErrorM, "particle-err-m")
			b.ReportMetric(rows[2].MeanErrorM, "ekf-err-m")
		}
	}
}

func BenchmarkExtensionPowerControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunExtensionPowerControl(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.FixRate, "fixrate-pct-"+itoa(int(r.TxPowerDBm))+"dBm")
			}
		}
	}
}

func BenchmarkExtensionClockSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunExtensionClockSkew(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.DriftSigmaS == 1.5 {
					name := "fixrate-pct-drift1.5-sync-off"
					if r.SyncEnabled {
						name = "fixrate-pct-drift1.5-sync-on"
					}
					b.ReportMetric(100*r.FixRate, name)
				}
			}
		}
	}
}

// BenchmarkGeoRouting measures greedy and GFG routing over a CoCoA-derived
// position snapshot (the paper's geographic-routing use case).
func BenchmarkGeoRouting(b *testing.B) {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 40
	cfg.NumEquipped = 20
	cfg.BeaconPeriodS = 50
	cfg.DurationS = 240
	cfg.GridCellM = 4
	cfg.Calibration.Samples = 80000
	res, err := cocoa.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cocoa.NewGeoGraph(res.FinalTruePositions, res.FinalEstimates, 50)
	if err != nil {
		b.Fatal(err)
	}
	var st cocoa.GeoStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % g.N()
		dst := (i*7 + 3) % g.N()
		if src == dst {
			continue
		}
		o, err := g.GFG(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		st.Record(o)
	}
	if st.Attempts > 0 {
		b.ReportMetric(100*st.DeliveryRate(), "delivery-pct")
	}
}

// BenchmarkCoCoARunScaling measures raw simulator throughput at the
// default paper configuration, shortened.
func BenchmarkCoCoARunScaling(b *testing.B) {
	cfg := cocoa.DefaultConfig()
	cfg.DurationS = 120
	cfg.Calibration.Samples = 80000
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := cocoa.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanError() <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkBaselineCoopPos regenerates the CoCoA vs Cooperative
// Positioning comparison (the paper's related-work baseline).
func BenchmarkBaselineCoopPos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunBaselineCoopPos(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MeanErrorM, "err-m-"+r.System)
			}
		}
	}
}

// BenchmarkExtensionReporting regenerates the controller-reporting data
// path measurement.
func BenchmarkExtensionReporting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunExtensionReporting(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.DeliveryRate, "delivery-pct-T"+itoa(int(r.PeriodS)))
			}
		}
	}
}

// benchmarkReplication is the embarrassingly parallel workload behind the
// serial/parallel pair below: 8 independent seeded runs of the default
// deployment. On a multi-core host the parallel variant should show >=2x
// speedup at Parallelism=4 (the runs dominate; the calibration table is
// computed once and shared); on a single-CPU host the two are expected to
// tie. Results are byte-identical either way.
func benchmarkReplication(b *testing.B, parallelism int) {
	opts := benchOpts(1)
	opts.Parallelism = parallelism
	for i := 0; i < b.N; i++ {
		rep, err := cocoa.RunReplication(opts, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.MeanErrorM, "mean-err-m")
		}
	}
}

func BenchmarkReplicationSerial(b *testing.B)    { benchmarkReplication(b, 1) }
func BenchmarkReplicationParallel4(b *testing.B) { benchmarkReplication(b, 4) }

// BenchmarkExtensionTerrain regenerates the uneven-terrain study.
func BenchmarkExtensionTerrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cocoa.RunExtensionTerrain(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Amplitude > 0 {
					b.ReportMetric(r.MeanErrorM, "rough-err-m-"+r.Mode)
				}
			}
		}
	}
}

// benchmarkSwarm runs one constant-density swarm deployment (DESIGN.md
// §12). The grid/scan pair at each size is the spatial index's headline:
// identical results, with per-frame MAC cost bounded by the local
// neighborhood instead of the team size. Team construction (RNG stream
// seeding and robot allocation for n robots, identical in both modes and
// not what the index accelerates) happens outside the timer; the measured
// region is the simulation run itself.
func benchmarkSwarm(b *testing.B, n int, index string) {
	cfg := cocoa.SwarmConfig(n)
	cfg.NeighborIndex = index
	cfg.Calibration.Samples = 80000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tm, err := cocoa.NewTeam(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := tm.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanError(), "mean-err-m")
		}
	}
}

func BenchmarkSwarmSim100(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchmarkSwarm(b, 100, "grid") })
	b.Run("scan", func(b *testing.B) { benchmarkSwarm(b, 100, "scan") })
}

func BenchmarkSwarmSim500(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchmarkSwarm(b, 500, "grid") })
	b.Run("scan", func(b *testing.B) { benchmarkSwarm(b, 500, "scan") })
}

func BenchmarkSwarmSim1000(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchmarkSwarm(b, 1000, "grid") })
	b.Run("scan", func(b *testing.B) { benchmarkSwarm(b, 1000, "scan") })
}
