module cocoa

go 1.22
