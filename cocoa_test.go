package cocoa_test

import (
	"math"
	"testing"

	"cocoa"
)

// The public API must be usable exactly as the README shows.
func TestPublicQuickstart(t *testing.T) {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 10
	cfg.NumEquipped = 5
	cfg.BeaconPeriodS = 30
	cfg.DurationS = 120
	cfg.GridCellM = 4
	cfg.Calibration.Samples = 60000

	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MeanError(); math.IsNaN(m) || m <= 0 {
		t.Errorf("MeanError = %v", m)
	}
	if s := res.EnergySavings(); s <= 1 {
		t.Errorf("EnergySavings = %v", s)
	}
}

func TestPublicModes(t *testing.T) {
	modes := []cocoa.Mode{cocoa.ModeOdometryOnly, cocoa.ModeRFOnly, cocoa.ModeCombined}
	want := []string{"odometry-only", "rf-only", "cocoa"}
	for i, m := range modes {
		if m.String() != want[i] {
			t.Errorf("mode %d = %q, want %q", i, m.String(), want[i])
		}
	}
}

func TestPublicGeometryHelpers(t *testing.T) {
	r := cocoa.Square(200)
	if got := r.Area(); got != 40000 {
		t.Errorf("Square(200).Area() = %v", got)
	}
	v := cocoa.Vec2{X: 3, Y: 4}
	if got := v.Len(); got != 5 {
		t.Errorf("Vec2.Len = %v", got)
	}
}

func TestPublicSweepAccessors(t *testing.T) {
	ts := cocoa.ExperimentBeaconSweep()
	if len(ts) != 4 || ts[0] != 10 || ts[3] != 300 {
		t.Errorf("beacon sweep = %v", ts)
	}
	ns := cocoa.ExperimentDeviceCounts()
	if len(ns) != 4 || ns[0] != 5 || ns[3] != 35 {
		t.Errorf("device counts = %v", ns)
	}
	// The accessors must return copies.
	ts[0] = 999
	ns[0] = 999
	if cocoa.ExperimentBeaconSweep()[0] == 999 || cocoa.ExperimentDeviceCounts()[0] == 999 {
		t.Error("sweep accessors leak internal slices")
	}
}

func TestPublicTeamAPI(t *testing.T) {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.DurationS = 60
	cfg.BeaconPeriodS = 20
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000

	team, err := cocoa.NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if team.Table() == nil {
		t.Error("calibration table missing")
	}
	res, err := team.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalEstimates) != cfg.NumRobots ||
		len(res.FinalTruePositions) != cfg.NumRobots ||
		len(res.Equipped) != cfg.NumRobots {
		t.Errorf("final-state slices sized %d/%d/%d, want %d each",
			len(res.FinalEstimates), len(res.FinalTruePositions),
			len(res.Equipped), cfg.NumRobots)
	}
	equippedCount := 0
	for _, e := range res.Equipped {
		if e {
			equippedCount++
		}
	}
	if equippedCount != cfg.NumEquipped {
		t.Errorf("equipped count = %d, want %d", equippedCount, cfg.NumEquipped)
	}
}

func TestPublicLocalizerBackends(t *testing.T) {
	kinds := []cocoa.LocalizerKind{cocoa.LocalizerGrid, cocoa.LocalizerParticle, cocoa.LocalizerEKF}
	want := []string{"grid", "particle", "ekf"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("backend %d = %q, want %q", i, k.String(), want[i])
		}
	}
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.DurationS = 90
	cfg.BeaconPeriodS = 25
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000
	cfg.Localizer = cocoa.LocalizerEKF
	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixes == 0 {
		t.Error("EKF backend produced no fixes through the public API")
	}
}

func TestPublicGeoRouting(t *testing.T) {
	pts := []cocoa.Vec2{{X: 0}, {X: 30}, {X: 60}}
	g, err := cocoa.NewGeoGraph(pts, pts, 40)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.GFG(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Hops != 2 {
		t.Errorf("GFG outcome = %+v", out)
	}
}

func TestPublicCoopPosBaseline(t *testing.T) {
	rows, err := cocoa.RunBaselineCoopPos(cocoa.ExperimentOptions{
		Seed: 5, DurationS: 150, NumRobots: 10,
		CalibrationSamples: 40000, GridCellM: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
}

func TestPublicSteadyStateMean(t *testing.T) {
	s := cocoa.Series{Times: []float64{0, 10, 20}, Values: []float64{100, 2, 4}}
	if got := cocoa.SteadyStateMean(s, 10); got != 3 {
		t.Errorf("SteadyStateMean = %v", got)
	}
}
